"""The GPU hash table (Sections III-B and IV).

:class:`GpuHashTable` is the requestee of the SEPO protocol: inserts return
per-record SUCCESS/POSTPONE, and :meth:`end_iteration` performs the
Figure-5 rearrangement (eviction to CPU memory, chain maintenance, pool
refill).  It composes

* a :class:`~repro.core.buckets.BucketArray` (dual-pointer chain heads),
* a :class:`~repro.memalloc.heap.GpuHeap` + bucket-group allocator,
* one of the three :mod:`~repro.core.organizations`,

and reports every batch's cost statistics (:class:`~repro.gpusim.BatchStats`)
so a :class:`~repro.gpusim.KernelModel` can charge simulated time.

The finished table is readable from the CPU side -- :meth:`cpu_items` walks
the CPU pointer chains across resident and evicted segments alike, and
:meth:`result` additionally merges duplicate keys (combining residue across
iterations) into the final mapping.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.core import entries as E
from repro.core.buckets import BucketArray
from repro.core.chainview import ChainViewStore
from repro.core.mutations import MutationBatch, MutationCounters
from repro.core.organizations import (
    CombiningOrganization,
    EvictionReport,
    InsertTally,
    MultiValuedOrganization,
    Organization,
)
from repro.core.records import RecordBatch
from repro.gpusim.clock import CostCategory, CostLedger
from repro.gpusim.kernel import BatchStats
from repro.gpusim.memory import DeviceMemory
from repro.memalloc.address import NULL
from repro.memalloc.allocator import BucketGroupAllocator
from repro.memalloc.heap import GpuHeap

__all__ = ["GpuHashTable", "InsertResult"]


class InsertResult:
    """Outcome of a batched insert: per-record mask + cost statistics."""

    def __init__(self, success: np.ndarray, stats: BatchStats, tally: InsertTally):
        self.success = success
        self.stats = stats
        self.tally = tally

    @property
    def n_success(self) -> int:
        return int(self.success.sum())

    @property
    def n_postponed(self) -> int:
        return len(self.success) - self.n_success


class GpuHashTable:
    """Larger-than-memory chained hash table for GPUs (simulated)."""

    def __init__(
        self,
        n_buckets: int,
        organization: Organization,
        heap: GpuHeap,
        group_size: int = 64,
        device_memory: DeviceMemory | None = None,
        ledger: CostLedger | None = None,
        trace=None,
        sanitize: str | None = None,
        integrity: str | None = None,
        scrub_budget: int = 4,
    ):
        from repro.sanitize.sanitizer import resolve_level

        #: sanitize level ("off"|"end"|"iteration"|"paranoid"); None reads
        #: the REPRO_SANITIZE environment override (CI's hook)
        self.sanitize = resolve_level(sanitize)
        from repro.integrity import PageIntegrity, resolve_integrity

        #: integrity level ("off"|"verify"|"scrub"); None reads the
        #: REPRO_INTEGRITY environment override.  "off" leaves
        #: ``heap.integrity`` None: bit-identical to pre-integrity code.
        self.integrity = resolve_integrity(integrity)
        if self.integrity != "off" and heap.integrity is None:
            heap.integrity = PageIntegrity(
                mode=self.integrity, scrub_budget=scrub_budget
            )
        self.buckets = BucketArray(n_buckets, group_size, device_memory)
        self.heap = heap
        #: struct-of-arrays chain views cached across lookup passes,
        #: invalidated by the heap's residency/write epochs
        self.chain_views = ChainViewStore(heap)
        self.alloc = BucketGroupAllocator(heap, self.buckets.n_groups)
        self.org = organization
        self.ledger = ledger if ledger is not None else CostLedger()
        self.trace = trace
        #: aggregate instruction throughput used to charge chain-maintenance
        #: work; sessions set this to the device's compute throughput.
        self.maintenance_throughput = 1e12
        self.iterations_completed = 0
        self.total_inserted = 0
        self.total_postponed = 0
        #: acknowledged mutation-batch ops (kept out of ``total_inserted``
        #: so the per-organization tally reconciles stay exact)
        self.total_mutated = 0
        self.mutations = MutationCounters()
        self.eviction_reports: list[EvictionReport] = []

    # ------------------------------------------------------------------
    # insert path
    # ------------------------------------------------------------------
    def insert_batch(
        self, batch: RecordBatch, indices: np.ndarray | None = None
    ) -> InsertResult:
        """Attempt to insert ``batch[indices]``; POSTPONE is not an error.

        Returns the per-record success mask (aligned with ``indices``) and
        the batch's cost statistics for the kernel model.  The caller (the
        SEPO driver) owns the pending bitmap and the time charging.
        """
        if indices is None:
            indices = np.arange(len(batch))
        tally = InsertTally()
        if len(indices) == 0:
            return InsertResult(np.zeros(0, dtype=bool), BatchStats(), tally)
        # Hash the full batch once (memoized on the batch) and index into
        # it: reissued pending subsets cost a gather, not a re-hash.
        bucket_ids = batch.cache.bucket_ids(self.buckets)[indices]
        success = self.org.insert_indices(self, batch, indices, bucket_ids, tally)
        stats = self._stats_from(batch, indices, bucket_ids, tally)
        self.total_inserted += tally.succeeded
        self.total_postponed += tally.postponed
        if self.sanitize == "paranoid":
            self.check_invariants()
        return InsertResult(success, stats, tally)

    def apply_batch(
        self, batch: RecordBatch, indices: np.ndarray | None = None
    ) -> InsertResult:
        """Apply any batch: the SEPO driver's single dispatch point.

        Pure-insert batches (including a :class:`MutationBatch` whose ops
        are all inserts) take the legacy insert path -- no postponement
        gate, pre-aggregated kernels fully engaged; mixed batches take the
        gated mutation path.
        """
        if not batch.pure_insert:
            return self.mutate_batch(batch, indices)
        return self.insert_batch(batch, indices)

    def mutate_batch(
        self, batch: MutationBatch, indices: np.ndarray | None = None
    ) -> InsertResult:
        """Apply ``batch[indices]`` of interleaved insert/update/delete/
        lookup ops; POSTPONE is not an error.

        Same contract as :meth:`insert_batch`: a per-record success mask
        aligned with ``indices`` plus cost statistics.  Lookup results are
        deposited in ``batch.lookup_results`` keyed by batch-local record
        index.
        """
        if indices is None:
            indices = np.arange(len(batch))
        tally = InsertTally()
        if len(indices) == 0:
            return InsertResult(np.zeros(0, dtype=bool), BatchStats(), tally)
        bucket_ids = batch.cache.bucket_ids(self.buckets)[indices]
        success = self.org.mutate_indices(self, batch, indices, bucket_ids, tally)
        stats = self._stats_from(batch, indices, bucket_ids, tally)
        self.total_mutated += tally.succeeded
        self.total_postponed += tally.postponed
        if self.sanitize == "paranoid":
            self.check_invariants()
        return InsertResult(success, stats, tally)

    def insert(self, key: bytes, value: Any) -> bool:
        """Scalar convenience insert; returns SUCCESS (True) / POSTPONE."""
        if isinstance(self.org, CombiningOrganization):
            batch = RecordBatch.from_numeric(
                [key], np.array([value], dtype=self.org.combiner.dtype)
            )
        else:
            batch = RecordBatch.from_pairs([(key, value)])
        return bool(self.insert_batch(batch).success[0])

    def _stats_from(self, batch, indices, bucket_ids, tally) -> BatchStats:
        from repro.gpusim.atomics import hottest_count

        n = len(indices)
        cycles = batch.parse_cycles + (tally.table_cycles / n if n else 0.0)
        input_bytes = int(
            batch.key_lens[indices].sum()
            + (
                8 * n
                if batch.numeric_values is not None
                else int(batch.val_lens[indices].sum())
            )
        )
        hottest_alloc = 0
        if tally.alloc_groups:
            hottest_alloc = hottest_count(tally.alloc_groups.as_array())
        return BatchStats(
            n_records=n,
            cycles_per_record=cycles,
            divergence=batch.divergence,
            bytes_touched=tally.bytes_touched + input_bytes,
            hottest_bucket=hottest_count(bucket_ids),
            hottest_alloc=hottest_alloc,
        )

    # ------------------------------------------------------------------
    # SEPO iteration protocol
    # ------------------------------------------------------------------
    def should_halt(self) -> bool:
        """Must the computation stop mid-input? (basic method only)"""
        return self.org.should_halt(self)

    def end_iteration(self, pcie_bus=None) -> EvictionReport:
        """Figure-5 rearrangement: evict per policy, refill the pool.

        When ``pcie_bus`` is given, the eviction copyback is charged as one
        bulky transfer, and chain maintenance as MAINTENANCE time.
        """
        report = self.org.end_iteration(self)
        self.iterations_completed += 1
        self.eviction_reports.append(report)
        if pcie_bus is not None and report.bytes_evicted:
            pcie_bus.bulk(report.bytes_evicted)
        if report.maintenance_cycles:
            self.ledger.charge(
                CostCategory.MAINTENANCE,
                report.maintenance_cycles / self.maintenance_throughput,
            )
        if self.heap.integrity is not None:
            self.heap.integrity.advance_epoch()
        self._drain_integrity_charges(pcie_bus)
        self.sanitize_check("iteration")
        return report

    def _drain_integrity_charges(self, pcie_bus=None) -> None:
        """Charge CRC work and torn-transfer retries accrued this iteration.

        Draining at the iteration boundary (rather than per check) keeps
        the simulated clock deterministic regardless of *when* within the
        iteration checks ran, which checkpoint/resume byte-identity relies
        on.
        """
        integrity = self.heap.integrity
        if integrity is None:
            return
        crc_bytes, retries = integrity.drain_pending()
        if crc_bytes:
            from repro.integrity import CRC_CYCLES_PER_BYTE

            self.ledger.charge(
                CostCategory.SCRUB,
                crc_bytes * CRC_CYCLES_PER_BYTE / self.maintenance_throughput,
            )
        if retries and pcie_bus is not None:
            for nbytes, attempts in retries:
                pcie_bus.torn_retry(nbytes, attempts)

    def maybe_scrub(self, pcie_bus=None) -> int:
        """Run one budgeted background-scrub sweep (``integrity="scrub"``).

        Called by the SEPO driver after each iteration's rearrangement.
        Returns the number of bytes checksummed (0 when scrubbing is off).
        Detection, quarantine, and repair happen inside the sweep; the CRC
        cost is charged to SCRUB immediately.
        """
        integrity = self.heap.integrity
        if integrity is None or integrity.mode != "scrub":
            return 0
        swept = integrity.scrub(self.heap)
        self._drain_integrity_charges(pcie_bus)
        return swept

    # ------------------------------------------------------------------
    # sanitizer hooks (see repro.sanitize)
    # ------------------------------------------------------------------
    def check_invariants(self):
        """Run a full sanitize pass now, regardless of the knob.

        Raises :class:`~repro.sanitize.sanitizer.SanitizerError` on any
        structural-invariant violation; returns the census report.
        """
        from repro.sanitize.sanitizer import check_table

        return check_table(self)

    def sanitize_check(self, point: str) -> None:
        """Check invariants if the sanitize level covers ``point``
        (``"end"`` | ``"iteration"`` | ``"batch"``)."""
        if self.sanitize == "off":
            return
        from repro.sanitize.sanitizer import should_check

        if should_check(self.sanitize, point):
            self.check_invariants()

    # ------------------------------------------------------------------
    # CPU-side access (the dual-pointer payoff)
    # ------------------------------------------------------------------
    def cpu_items(self) -> Iterator[tuple[bytes, Any]]:
        """Walk every bucket chain via CPU pointers, without merging.

        Yields raw per-entry payloads: scalars for the combining method,
        value bytes for the basic method, and ``list[bytes]`` (one key
        entry's value list) for the multi-valued method.  Duplicate keys may
        appear when postponement split a key across iterations.

        Mutation flags are resolved here with the newest-first automaton:
        chains are walked newest-first, so the first tombstone seen for a
        key closes it (older copies are dead and never yielded), and a
        shadow entry yields its own payload then closes the key.
        """
        heap = self.heap
        page_size = heap.page_size
        multivalued = isinstance(self.org, MultiValuedOrganization)
        combining = isinstance(self.org, CombiningOrganization)
        fmt = self.org.combiner.fmt if combining else None
        for b in self.buckets.occupied_buckets():
            addr = int(self.buckets.head_cpu[b])
            closed: set[bytes] = set()
            while addr != NULL:
                seg, off = divmod(addr, page_size)
                buf = heap.segment_view(seg)
                if multivalued:
                    hdr = E.read_key_entry_header(buf, off)
                    next_cpu, vhead_cpu, klen, flags = (
                        hdr[1], hdr[3], hdr[4], hdr[5]
                    )
                    key = E.key_entry_key(buf, off, klen)
                    # an *empty* PENDING key entry is allocated but
                    # unacknowledged (its first value append postponed):
                    # invisible to readers.  PENDING with values means a
                    # later append postponed; the values are real data.
                    unborn = flags & E.FLAG_PENDING and vhead_cpu == NULL
                    if key not in closed and not unborn:
                        if flags & E.FLAG_TOMBSTONE:
                            closed.add(key)
                        else:
                            yield key, self._collect_values(vhead_cpu)
                            if flags & E.FLAG_SHADOW:
                                closed.add(key)
                else:
                    _, next_cpu, klen, vlen = E.read_entry_header(buf, off)
                    key = E.entry_key(buf, off, klen)
                    if key not in closed:
                        flags = E.entry_flags(buf, off)
                        if flags & E.GFLAG_TOMBSTONE:
                            closed.add(key)
                        elif combining:
                            vo = off + E.ENTRY_HEADER + klen
                            yield key, fmt.unpack_from(buf, vo)[0]
                        else:
                            yield key, E.entry_value(buf, off, klen, vlen)
                            if flags & E.GFLAG_SHADOW:
                                closed.add(key)
                addr = next_cpu

    def _collect_values(self, vhead_cpu: int) -> list[bytes]:
        heap = self.heap
        page_size = heap.page_size
        values = []
        addr = vhead_cpu
        while addr != NULL:
            seg, off = divmod(addr, page_size)
            buf = heap.segment_view(seg)
            vnext_gpu, vnext_cpu, vlen = E.read_value_node_header(buf, off)
            values.append(E.value_node_value(buf, off, vlen))
            addr = vnext_cpu
        return values

    def result(self) -> dict[bytes, Any]:
        """The final merged mapping, resolving cross-iteration residue.

        * combining: duplicate keys are reduced with the combiner,
        * multi-valued: value lists of duplicate key entries are concatenated,
        * basic: every pair is kept (``dict[key, list[value]]``).
        """
        combining = isinstance(self.org, CombiningOrganization)
        multivalued = isinstance(self.org, MultiValuedOrganization)
        out: dict[bytes, Any] = {}
        for key, payload in self.cpu_items():
            if combining:
                if key in out:
                    # chains walk newest-first; fold older values in from
                    # the left so non-commutative combiners match the
                    # insertion-order model
                    out[key] = self.org.combiner.combine(payload, out[key])
                else:
                    out[key] = payload
            elif multivalued:
                out.setdefault(key, []).extend(payload)
            else:
                out.setdefault(key, []).append(payload)
        return out

    # ------------------------------------------------------------------
    @property
    def load_factor(self) -> float:
        """Entries per bucket (can exceed 1; chains degrade gracefully)."""
        return self.total_inserted / self.buckets.n_buckets
