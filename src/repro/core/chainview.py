"""Struct-of-arrays views over resident bucket chains.

A bucket chain is a linked list, so a single walk is inherently
sequential; the vectorization win comes from walking *many* chains at
once.  :func:`materialize_chains` advances every requested chain
level-synchronously: one gather parses the current entry of all still-live
walks (header words via int64/uint32 views of the heap arena), one
residency-map lookup splits them into resident and blocked, and the
survivors step to their ``next_cpu`` together.  The per-entry Python work
of the old scalar materializers -- ``divmod``, a dict probe, a
``struct.unpack_from`` and two ``bytes`` copies per chain step -- becomes
a handful of numpy operations per chain *level*, shared by every chain
still alive at that depth.

The result is a :class:`ChainSoA` per chain: flat arrays of addresses,
arena positions, key/value lengths, mutation flags, and walk-charge
cumsums, plus one zero-padded key matrix for whole-chain key compares.
Consumers either scan it directly (lookups) or convert it into the
classic per-batch :class:`~repro.core.organizations._ChainReplay` memo
(insert replay and mutation paths), so all charging code stays shared
with the scalar oracle.

:class:`ChainViewStore` caches views across lookup passes.  Validity is
stamped by two heap counters: ``residency_epoch`` (any page moving in or
out of the arena relocates bytes) and ``write_epoch`` (any in-place
entry write -- tombstones, combines, splices -- goes through
``GpuHeap.note_write``, which the integrity layer already requires of
every such path).  Entry *allocation* never invalidates a view: new
entries are only ever prepended, so a cached view keyed by its start
address stays byte-accurate and simply becomes a suffix.
"""

from __future__ import annotations

import numpy as np

from repro.core import _kernels as K
from repro.core import entries as E
from repro.memalloc.address import NULL

__all__ = ["ChainSoA", "ChainViewStore", "materialize_chains"]

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_KEYS = np.zeros((0, 0), dtype=np.uint8)


class ChainSoA:
    """One chain's resident prefix, parsed into flat arrays (walk order:
    index 0 is the entry at the start address, i.e. newest first)."""

    __slots__ = (
        "head", "arena", "addrs", "pos", "klens", "vlens", "flags",
        "costs", "cum", "keys", "blocked",
    )

    def __init__(self, head, arena, addrs, pos, klens, vlens, flags,
                 costs, cum, keys, blocked):
        self.head = head  # cpu address the walk started from
        self.arena = arena  # the heap arena (uint8); pos indexes into it
        self.addrs = addrs  # cpu address per entry
        self.pos = pos  # absolute arena byte position per entry
        self.klens = klens
        self.vlens = vlens  # zeros for key-entry chains
        self.flags = flags  # raw mutation-flag bits per entry
        self.costs = costs  # bytes a walk is charged for visiting
        self.cum = cum  # inclusive prefix sums of costs, walk order
        self.keys = keys  # (n, max_klen) zero-padded key bytes
        #: (segment, address) where the walk left residency, else None
        self.blocked = blocked

    @property
    def n(self) -> int:
        return len(self.addrs)

    def match_positions(self, key: bytes) -> np.ndarray:
        """Walk-order positions whose key equals ``key`` exactly.

        Length is compared as well as bytes: the key matrix is
        zero-padded, so a pure row compare could not tell a short key
        from a longer one with embedded NULs.
        """
        kl = len(key)
        m = self.klens == kl
        if kl and m.any():
            q = np.frombuffer(key, dtype=np.uint8)
            m &= (self.keys[:, :kl] == q).all(axis=1)
        return np.flatnonzero(m)

    def key_bytes(self, w: int, blob: bytes | None = None) -> bytes:
        """Key bytes of entry ``w``; pass ``self.keys.tobytes()`` as
        ``blob`` when extracting many keys to skip per-row views."""
        width = self.keys.shape[1]
        if blob is None:
            return bytes(self.keys[w, : self.klens[w]])
        start = w * width
        return blob[start : start + int(self.klens[w])]

    def value_bytes(self, w: int) -> bytes:
        """Raw value bytes of generic entry ``w`` (from the live arena)."""
        vo = int(self.pos[w]) + E.ENTRY_HEADER + int(self.klens[w])
        return self.arena[vo : vo + int(self.vlens[w])].tobytes()


def _empty_view(head: int, arena: np.ndarray, blocked) -> ChainSoA:
    return ChainSoA(
        head, arena, _EMPTY_I64, _EMPTY_I64, _EMPTY_I64, _EMPTY_I64,
        _EMPTY_I64, _EMPTY_I64, _EMPTY_I64, _EMPTY_KEYS, blocked,
    )


def _materialize_scalar(heap, head, kind, header, arena) -> ChainSoA:
    """Per-entry walk producing the same ChainSoA as the bulk path.

    Only used when the arena or page size is not 8-byte aligned, where
    the int64/uint32 word views of the bulk gathers are unavailable.
    """
    page_size = heap.page_size
    addr = head
    addrs, pos, klens, vlens, flags = [], [], [], [], []
    blocked = None
    while addr != NULL:
        seg, off = divmod(addr, page_size)
        page = heap.resident_page(seg)
        if page is None:
            blocked = (seg, addr)
            break
        buf = heap.pool.slot_view(page.slot)
        if kind == "generic":
            _, next_cpu, kl, vl = E.read_entry_header(buf, off)
            fl = E.entry_flags(buf, off)
        else:
            hdr = E.read_key_entry_header(buf, off)
            next_cpu, kl, fl = hdr[1], hdr[4], hdr[5]
            vl = 0
        addrs.append(addr)
        pos.append(page.slot * page_size + off)
        klens.append(kl)
        vlens.append(vl)
        flags.append(fl)
        addr = next_cpu
    if not addrs:
        return _empty_view(head, arena, blocked)
    klen_a = np.array(klens, dtype=np.int64)
    pos_a = np.array(pos, dtype=np.int64)
    costs = header + klen_a
    width = int(klen_a.max())
    keymat = np.zeros((len(addrs), width), dtype=np.uint8)
    for w, (p, kl) in enumerate(zip(pos, klens)):
        keymat[w, :kl] = arena[p + header : p + header + kl]
    return ChainSoA(
        head, arena, np.array(addrs, dtype=np.int64), pos_a, klen_a,
        np.array(vlens, dtype=np.int64), np.array(flags, dtype=np.int64),
        costs, np.cumsum(costs), keymat, blocked,
    )


def _assemble(
    heads, arena, header, addr_s, pos_s, klen_s, vlen_s, flags_s, counts,
    blocked,
) -> dict[int, "ChainSoA"]:
    """Shared tail of both materializer paths: chain-major flat arrays ->
    per-head :class:`ChainSoA` views.

    Inputs must already be chain-major (chain ``i``'s entries contiguous,
    in walk order, ``counts[i]`` long); the per-chain cost cumsums, one
    zero-padded key matrix, and the per-head slicing happen here so the
    numpy and compiled walks cannot drift apart.
    """
    n = len(addr_s)
    costs_s = header + klen_s
    starts = np.concatenate(([0], np.cumsum(counts)))

    # inclusive per-chain cumsum: global cumsum minus each chain's base
    c = np.cumsum(costs_s)
    excl = np.concatenate(([0], c))
    cum_s = c - np.repeat(excl[starts[:-1]], counts)

    # one zero-padded key matrix for all chains; rows gather from the
    # arena, clamped so short keys never index past the arena end
    width = int(klen_s.max()) if n else 0
    if width:
        cols = np.arange(width, dtype=np.int64)
        valid = cols[None, :] < klen_s[:, None]
        idx = np.where(valid, (pos_s + header)[:, None] + cols, 0)
        keymat = arena[idx]
        keymat[~valid] = 0
    else:
        keymat = np.zeros((n, 0), dtype=np.uint8)

    out: dict[int, ChainSoA] = {}
    for i, h in enumerate(heads):
        a, b = int(starts[i]), int(starts[i + 1])
        out[h] = ChainSoA(
            h, arena, addr_s[a:b], pos_s[a:b], klen_s[a:b], vlen_s[a:b],
            flags_s[a:b], costs_s[a:b], cum_s[a:b], keymat[a:b],
            blocked.get(i),
        )
    return out


def materialize_chains(
    heap, heads, kind: str = "generic", compiled: bool = False
) -> dict[int, "ChainSoA"]:
    """Bulk-parse the resident chain prefixes starting at ``heads``.

    ``kind`` selects the entry layout (``"generic"`` for the basic and
    combining methods, ``"key"`` for multi-valued key entries); the walk
    itself is layout-agnostic.  ``compiled`` runs the *entire*
    level-synchronous loop as two jitted passes over the arena words
    (:func:`repro.core._kernels.walk_chains`) when numba is available,
    and otherwise falls back to the per-level numpy gathers below -- the
    same silent degradation as the other ``impl="compiled"`` seams.
    """
    heads = list(dict.fromkeys(int(h) for h in heads if h != NULL))
    arena = heap.pool.arena
    out: dict[int, ChainSoA] = {}
    if not heads:
        return out
    if kind == "generic":
        gather = K.gather_generic if compiled else K.gather_level_generic
        header = E.ENTRY_HEADER
    elif kind == "key":
        gather = K.gather_key if compiled else K.gather_level_key
        header = E.KEY_ENTRY_HEADER
    else:
        raise ValueError(f"unknown chain kind {kind!r}")

    page_size = heap.page_size
    if arena.nbytes % 8 or page_size % 8:
        # word views need 8-byte alignment; odd page sizes (tiny test
        # heaps) take the per-entry path
        for h in heads:
            out[h] = _materialize_scalar(heap, h, kind, header, arena)
        return out
    segmap = heap.resident_slot_map()
    w64 = arena.view(np.int64)
    w32 = arena.view(np.uint32)

    nc = len(heads)
    if compiled and K.walk_chains is not None:
        counts, addrs, pos, klen, vlen, flags, blocked = K.walk_chains(
            w64, w32, np.array(heads, dtype=np.int64), segmap, page_size,
            kind,
        )
        return _assemble(
            heads, arena, header, addrs, pos, klen, vlen, flags, counts,
            blocked,
        )
    cur = np.array(heads, dtype=np.int64)
    ci = np.arange(nc, dtype=np.int64)
    blocked: dict[int, tuple[int, int]] = {}
    lv_ci, lv_addr, lv_pos = [], [], []
    lv_klen, lv_vlen, lv_flags = [], [], []

    while len(cur):
        seg = cur // page_size
        slot = segmap[seg]
        dead = slot < 0
        if dead.any():
            for c, s, a in zip(
                ci[dead].tolist(), seg[dead].tolist(), cur[dead].tolist()
            ):
                blocked[c] = (s, a)
            live = ~dead
            ci, cur, seg, slot = ci[live], cur[live], seg[live], slot[live]
            if not len(cur):
                break
        pos = slot * page_size + (cur - seg * page_size)
        nxt, klen, vlen, flags = gather(w64, w32, pos)
        lv_ci.append(ci)
        lv_addr.append(cur)
        lv_pos.append(pos)
        lv_klen.append(klen)
        lv_vlen.append(vlen)
        lv_flags.append(flags)
        alive = nxt != NULL
        ci, cur = ci[alive], nxt[alive]

    if not lv_ci:
        for i, h in enumerate(heads):
            # the head itself was non-resident (or every head was)
            out[h] = _empty_view(h, arena, blocked.get(i))
        return out

    ci_all = np.concatenate(lv_ci)
    n = len(ci_all)
    # stable sort by chain id; level order within a chain IS walk order
    order = (ci_all * n + np.arange(n, dtype=np.int64)).argsort()
    counts = np.bincount(ci_all[order], minlength=nc)
    return _assemble(
        heads, arena, header,
        np.concatenate(lv_addr)[order],
        np.concatenate(lv_pos)[order],
        np.concatenate(lv_klen)[order],
        np.concatenate(lv_vlen)[order],
        np.concatenate(lv_flags)[order],
        counts, blocked,
    )


class ChainViewStore:
    """Cache of :class:`ChainSoA` views, invalidated by heap epochs.

    The stamp pairs ``residency_epoch`` (pages moved) with
    ``write_epoch`` (in-place entry writes); either advancing drops every
    cached view.  Used by the lookup driver to keep views alive across
    postponement passes -- insert/mutation paths materialize fresh per
    batch instead, because their memos must absorb in-batch writes.
    """

    def __init__(self, heap):
        self.heap = heap
        self._views: dict[tuple[str, int], ChainSoA] = {}
        self._stamp: tuple[int, int] | None = None

    def get_many(
        self, heads, kind: str = "generic", compiled: bool = False
    ) -> dict[int, ChainSoA]:
        heap = self.heap
        stamp = (heap.residency_epoch, heap.write_epoch)
        if stamp != self._stamp:
            self._views.clear()
            self._stamp = stamp
        heads = [int(h) for h in heads if h != NULL]
        missing = [h for h in heads if (kind, h) not in self._views]
        if missing:
            for h, v in materialize_chains(
                heap, missing, kind, compiled
            ).items():
                self._views[(kind, h)] = v
        return {h: self._views[(kind, h)] for h in heads}
