"""The SEPO model of computation (Section III).

SEPO = *Selective Postponement*: a requestee (the hash table) may decline a
request (an insert) when servicing it would be inefficient -- here, when the
GPU-side heap cannot allocate -- and the requestor (the application) tracks
declined requests in a bitmap and reissues them on a later pass over the
input.

:class:`SepoDriver` is the requestor-side loop of Figure 5: it streams the
input through BigKernel, inserts pending records, honours the organization's
halt policy (the basic method stops at 50% failed bucket groups), triggers
the end-of-iteration rearrangement, and repeats until the bitmap is clean.

:func:`postponement_profitable` is the Section III-A condition deciding when
postponing beats servicing inefficiently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Sequence

import numpy as np

from repro.bigkernel.pipeline import BigKernelPipeline
from repro.core.bitmap import PendingBitmap
from repro.core.hashtable import GpuHashTable
from repro.core.records import RecordBatch
from repro.gpusim.kernel import KernelModel
from repro.gpusim.pcie import PCIeBus

__all__ = [
    "Status",
    "postponement_profitable",
    "IterationRecord",
    "RunState",
    "SepoReport",
    "SepoDriver",
    "NoProgressError",
]


class Status(Enum):
    """Requestee responses in the SEPO protocol."""

    SUCCESS = auto()
    POSTPONE = auto()


def postponement_profitable(
    t_pre: float,
    t_postpone: float,
    t_postponed_service: float,
    t_inefficient_service: float,
    t_post: float,
) -> bool:
    """Section III-A: is postponing a task cheaper than servicing it badly?

    The postponed path pays the pre-computation twice (once before the
    decline, once on the reissue) plus the postponement bookkeeping, but
    services the request efficiently; the direct path services it
    inefficiently.
    """
    for name, t in (
        ("t_pre", t_pre),
        ("t_postpone", t_postpone),
        ("t_postponed_service", t_postponed_service),
        ("t_inefficient_service", t_inefficient_service),
        ("t_post", t_post),
    ):
        if t < 0:
            raise ValueError(f"{name} must be non-negative")
    postponed = (t_pre + t_postpone) + (t_pre + t_postponed_service + t_post)
    direct = t_pre + t_inefficient_service + t_post
    return postponed < direct


class NoProgressError(RuntimeError):
    """An entire pass over the pending records inserted nothing.

    This means the heap cannot host even one more entry (e.g. every page is
    pinned by pending multi-valued keys); larger pages, more heap, or fewer
    bucket groups are required.
    """


@dataclass
class IterationRecord:
    """Telemetry for one SEPO iteration."""

    index: int
    attempted: int = 0
    succeeded: int = 0
    postponed: int = 0
    halted_early: bool = False
    evicted_bytes: int = 0
    pages_retained: int = 0


@dataclass
class RunState:
    """Mutable requestor-side state of an in-flight SEPO run.

    Everything the iteration loop carries between passes lives here (rather
    than in local variables) so that a resilient driver can journal it at a
    checkpoint and restore it on resume.  ``starts``/``total`` are derived
    from the batches and recomputed at resume; the rest is genuine state.
    """

    bitmap: PendingBitmap
    starts: np.ndarray
    total: int
    log: list[IterationRecord] = field(default_factory=list)
    streamed: int = 0
    iteration: int = 0
    stuck_passes: int = 0
    #: chunks whose BatchCache has been released (hashes, bucket ids and
    #: byte materializations are only worth keeping while reissues loom)
    released: list[bool] = field(default_factory=list)
    #: chunk indices that may still hold pending records.  A per-pass skip
    #: list: late SEPO iterations typically reissue postponed subsets from a
    #: few chunks, and pruning finished chunks here means a pass costs
    #: O(active chunks), not O(all chunks).  Derived state -- ``None`` means
    #: "rebuild from the bitmap", which is how a journal restore (which only
    #: persists the bitmap) re-synchronizes it.
    active: list[int] | None = None


@dataclass
class SepoReport:
    """Result of a complete SEPO run."""

    iterations: int
    total_records: int
    elapsed_seconds: float
    breakdown: dict[str, float]
    iteration_log: list[IterationRecord] = field(default_factory=list)
    input_bytes_streamed: int = 0
    table_bytes: int = 0

    @property
    def postponement_rate(self) -> float:
        """Fraction of insert attempts that were postponed."""
        attempts = sum(r.attempted for r in self.iteration_log)
        if not attempts:
            return 0.0
        return sum(r.postponed for r in self.iteration_log) / attempts


class SepoDriver:
    """Requestor-side iteration loop over a batched input."""

    def __init__(
        self,
        table: GpuHashTable,
        kernel: KernelModel,
        bus: PCIeBus,
        pipeline: BigKernelPipeline | None = None,
        max_iterations: int = 1000,
    ):
        if kernel.ledger is not table.ledger:
            raise ValueError("table and kernel must share one ledger")
        self.table = table
        self.kernel = kernel
        self.bus = bus
        self.pipeline = pipeline if pipeline is not None else BigKernelPipeline(bus)
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------
    # resumable building blocks (the resilient driver drives these too)
    # ------------------------------------------------------------------
    def begin(self, batches: Sequence[RecordBatch]) -> RunState:
        """Fresh run state over ``batches`` (everything pending)."""
        starts = np.cumsum([0] + [len(b) for b in batches])
        total = int(starts[-1])
        return RunState(
            bitmap=PendingBitmap(total),
            starts=starts,
            total=total,
            released=[False] * len(batches),
        )

    def run_pass(
        self,
        batches: Sequence[RecordBatch],
        state: RunState,
        limit: int | None = None,
    ) -> IterationRecord:
        """One pass over every still-pending record (no rearrangement).

        ``limit`` caps the pending records attempted per batch -- the
        graceful-degradation "chunk shrinking" rung, which bounds the
        per-pass allocation burst on a starved heap.
        """
        ledger = self.table.ledger
        rec = IterationRecord(index=state.iteration)
        self.pipeline.begin_pass()
        if state.active is None:
            state.active = list(range(len(batches)))
        still_active: list[int] = []
        for ai, ci in enumerate(state.active):
            batch, start = batches[ci], state.starts[ci]
            pending = state.bitmap.pending_in(int(start), int(start) + len(batch))
            if pending.size == 0:
                # fully processed chunk: not re-streamed, cache released,
                # and dropped from the skip list for good
                if not state.released[ci]:
                    batch.invalidate_cache()
                    state.released[ci] = True
                continue
            still_active.append(ci)
            if limit is not None and pending.size > limit:
                pending = pending[:limit]
            local = pending - int(start)
            before = ledger.elapsed
            result = self.table.apply_batch(batch, local)
            self.kernel.charge(result.stats)
            kernel_seconds = ledger.elapsed - before
            self.pipeline.account(batch.input_bytes, kernel_seconds)
            state.streamed += batch.input_bytes
            state.bitmap.mark_done(pending[result.success])
            rec.attempted += len(pending)
            rec.succeeded += result.n_success
            rec.postponed += result.n_postponed
            if self.table.should_halt():
                rec.halted_early = True
                # unvisited chunks stay active for the next pass
                still_active.extend(state.active[ai + 1:])
                break
        state.active = still_active
        return rec

    def finish_iteration(self, state: RunState, rec: IterationRecord):
        """Figure-5 rearrangement + telemetry; returns the eviction report."""
        report = self.table.end_iteration(self.bus)
        # background integrity scrub: one budgeted sweep per iteration,
        # at the boundary where the table is quiescent (no in-flight pass)
        self.table.maybe_scrub(self.bus)
        rec.evicted_bytes = report.bytes_evicted
        rec.pages_retained = report.pages_retained
        state.log.append(rec)
        return report

    def finalize(
        self, batches: Sequence[RecordBatch], state: RunState
    ) -> SepoReport:
        """Release caches, run the end sanitize pass, build the report."""
        for ci, batch in enumerate(batches):
            if not state.released[ci]:
                batch.invalidate_cache()

        # sanitize="end": one full invariant pass over the finished table
        # (iteration/paranoid levels have already checked along the way).
        self.table.sanitize_check("end")

        ledger = self.table.ledger
        return SepoReport(
            iterations=state.iteration,
            total_records=state.total,
            elapsed_seconds=ledger.elapsed,
            breakdown=ledger.breakdown(),
            iteration_log=state.log,
            input_bytes_streamed=state.streamed,
            table_bytes=self.table.heap.total_table_bytes,
        )

    # ------------------------------------------------------------------
    def run(self, batches: Sequence[RecordBatch]) -> SepoReport:
        """Process every record of every batch to completion."""
        state = self.begin(batches)
        while state.bitmap.any_pending():
            state.iteration += 1
            if state.iteration > self.max_iterations:
                raise NoProgressError(
                    f"exceeded {self.max_iterations} SEPO iterations"
                )
            rec = self.run_pass(batches, state)
            if rec.succeeded == 0 and rec.attempted > 0:
                # One stuck pass is recoverable: the end-of-iteration
                # rearrangement (including the multi-valued deadlock
                # fallback) frees pages.  Two in a row means the heap truly
                # cannot host a single entry.
                state.stuck_passes += 1
                if state.stuck_passes >= 2:
                    raise NoProgressError(
                        "two consecutive SEPO passes made no progress; the "
                        "heap cannot host the working set"
                    )
            else:
                state.stuck_passes = 0
            self.finish_iteration(state, rec)
        return self.finalize(batches, state)
