"""The SEPO model of computation (Section III).

SEPO = *Selective Postponement*: a requestee (the hash table) may decline a
request (an insert) when servicing it would be inefficient -- here, when the
GPU-side heap cannot allocate -- and the requestor (the application) tracks
declined requests in a bitmap and reissues them on a later pass over the
input.

:class:`SepoDriver` is the requestor-side loop of Figure 5: it streams the
input through BigKernel, inserts pending records, honours the organization's
halt policy (the basic method stops at 50% failed bucket groups), triggers
the end-of-iteration rearrangement, and repeats until the bitmap is clean.

:func:`postponement_profitable` is the Section III-A condition deciding when
postponing beats servicing inefficiently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Sequence

import numpy as np

from repro.bigkernel.pipeline import BigKernelPipeline
from repro.core.bitmap import PendingBitmap
from repro.core.hashtable import GpuHashTable
from repro.core.records import RecordBatch
from repro.gpusim.kernel import KernelModel
from repro.gpusim.pcie import PCIeBus

__all__ = [
    "Status",
    "postponement_profitable",
    "IterationRecord",
    "SepoReport",
    "SepoDriver",
    "NoProgressError",
]


class Status(Enum):
    """Requestee responses in the SEPO protocol."""

    SUCCESS = auto()
    POSTPONE = auto()


def postponement_profitable(
    t_pre: float,
    t_postpone: float,
    t_postponed_service: float,
    t_inefficient_service: float,
    t_post: float,
) -> bool:
    """Section III-A: is postponing a task cheaper than servicing it badly?

    The postponed path pays the pre-computation twice (once before the
    decline, once on the reissue) plus the postponement bookkeeping, but
    services the request efficiently; the direct path services it
    inefficiently.
    """
    for name, t in (
        ("t_pre", t_pre),
        ("t_postpone", t_postpone),
        ("t_postponed_service", t_postponed_service),
        ("t_inefficient_service", t_inefficient_service),
        ("t_post", t_post),
    ):
        if t < 0:
            raise ValueError(f"{name} must be non-negative")
    postponed = (t_pre + t_postpone) + (t_pre + t_postponed_service + t_post)
    direct = t_pre + t_inefficient_service + t_post
    return postponed < direct


class NoProgressError(RuntimeError):
    """An entire pass over the pending records inserted nothing.

    This means the heap cannot host even one more entry (e.g. every page is
    pinned by pending multi-valued keys); larger pages, more heap, or fewer
    bucket groups are required.
    """


@dataclass
class IterationRecord:
    """Telemetry for one SEPO iteration."""

    index: int
    attempted: int = 0
    succeeded: int = 0
    postponed: int = 0
    halted_early: bool = False
    evicted_bytes: int = 0
    pages_retained: int = 0


@dataclass
class SepoReport:
    """Result of a complete SEPO run."""

    iterations: int
    total_records: int
    elapsed_seconds: float
    breakdown: dict[str, float]
    iteration_log: list[IterationRecord] = field(default_factory=list)
    input_bytes_streamed: int = 0
    table_bytes: int = 0

    @property
    def postponement_rate(self) -> float:
        """Fraction of insert attempts that were postponed."""
        attempts = sum(r.attempted for r in self.iteration_log)
        if not attempts:
            return 0.0
        return sum(r.postponed for r in self.iteration_log) / attempts


class SepoDriver:
    """Requestor-side iteration loop over a batched input."""

    def __init__(
        self,
        table: GpuHashTable,
        kernel: KernelModel,
        bus: PCIeBus,
        pipeline: BigKernelPipeline | None = None,
        max_iterations: int = 1000,
    ):
        if kernel.ledger is not table.ledger:
            raise ValueError("table and kernel must share one ledger")
        self.table = table
        self.kernel = kernel
        self.bus = bus
        self.pipeline = pipeline if pipeline is not None else BigKernelPipeline(bus)
        self.max_iterations = max_iterations

    def run(self, batches: Sequence[RecordBatch]) -> SepoReport:
        """Process every record of every batch to completion."""
        ledger = self.table.ledger
        starts = np.cumsum([0] + [len(b) for b in batches])
        total = int(starts[-1])
        bitmap = PendingBitmap(total)
        log: list[IterationRecord] = []
        streamed = 0

        iteration = 0
        stuck_passes = 0
        #: chunks whose BatchCache has been released (hashes, bucket ids and
        #: byte materializations are only worth keeping while reissues loom)
        released = [False] * len(batches)
        while bitmap.any_pending():
            iteration += 1
            if iteration > self.max_iterations:
                raise NoProgressError(
                    f"exceeded {self.max_iterations} SEPO iterations"
                )
            rec = IterationRecord(index=iteration)
            self.pipeline.begin_pass()
            for ci, (batch, start) in enumerate(zip(batches, starts)):
                pending = bitmap.pending_in(int(start), int(start) + len(batch))
                if pending.size == 0:
                    # fully processed chunk: not re-streamed, cache released
                    if not released[ci]:
                        batch.invalidate_cache()
                        released[ci] = True
                    continue
                local = pending - int(start)
                before = ledger.elapsed
                result = self.table.insert_batch(batch, local)
                self.kernel.charge(result.stats)
                kernel_seconds = ledger.elapsed - before
                self.pipeline.account(batch.input_bytes, kernel_seconds)
                streamed += batch.input_bytes
                bitmap.mark_done(pending[result.success])
                rec.attempted += len(pending)
                rec.succeeded += result.n_success
                rec.postponed += result.n_postponed
                if self.table.should_halt():
                    rec.halted_early = True
                    break
            if rec.succeeded == 0 and rec.attempted > 0:
                # One stuck pass is recoverable: the end-of-iteration
                # rearrangement (including the multi-valued deadlock
                # fallback) frees pages.  Two in a row means the heap truly
                # cannot host a single entry.
                stuck_passes += 1
                if stuck_passes >= 2:
                    raise NoProgressError(
                        "two consecutive SEPO passes made no progress; the "
                        "heap cannot host the working set"
                    )
            else:
                stuck_passes = 0
            report = self.table.end_iteration(self.bus)
            rec.evicted_bytes = report.bytes_evicted
            rec.pages_retained = report.pages_retained
            log.append(rec)

        for ci, batch in enumerate(batches):
            if not released[ci]:
                batch.invalidate_cache()

        # sanitize="end": one full invariant pass over the finished table
        # (iteration/paranoid levels have already checked along the way).
        self.table.sanitize_check("end")

        return SepoReport(
            iterations=iteration,
            total_records=total,
            elapsed_seconds=ledger.elapsed,
            breakdown=ledger.breakdown(),
            iteration_log=log,
            input_bytes_streamed=streamed,
            table_bytes=self.table.heap.total_table_bytes,
        )
