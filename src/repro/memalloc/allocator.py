"""Bucket-group allocator (Section IV-A).

Allocation load is distributed across the heap's pages by partitioning the
hash-table buckets into *bucket groups* of ``group_size`` contiguous buckets
and serving each group from its own current page (per page kind).  Threads
inserting into different groups therefore bump different free-list pointers,
which is the paper's scalability trick; the price is fragmentation, because
a group's page can end an iteration partially full.

An allocation is *postponed* (returns ``None``) when the group's current
page cannot fit the request and the pool has no fresh page to hand out.
Failures are sticky within an iteration -- nothing frees pages until the
end-of-iteration eviction -- and the fraction of failed groups drives the
basic method's 50%-halt policy (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memalloc.heap import GpuHeap
from repro.memalloc.pages import Page, PageKind

__all__ = ["AllocationStats", "BucketGroupAllocator", "BulkAllocation"]


@dataclass
class AllocationStats:
    """Counters over the allocator's lifetime."""

    requests: int = 0
    postponed: int = 0
    pages_taken: int = 0
    bytes_allocated: int = 0


@dataclass
class Allocation:
    """Result of a successful allocation."""

    page: Page
    offset: int
    cpu_addr: int
    gpu_addr: int


@dataclass
class BulkAllocation:
    """Result of :meth:`BucketGroupAllocator.allocate_many`.

    All arrays are aligned with the request order; ``slot``/``segment``/
    ``offset``/``cpu_addr``/``gpu_addr`` are only meaningful where ``ok``.
    """

    ok: np.ndarray  # (n,) bool
    slot: np.ndarray  # (n,) int64
    segment: np.ndarray  # (n,) int64
    offset: np.ndarray  # (n,) int64
    cpu_addr: np.ndarray  # (n,) int64
    gpu_addr: np.ndarray  # (n,) int64


class BucketGroupAllocator:
    """Per-bucket-group bump allocation over heap pages."""

    def __init__(self, heap: GpuHeap, n_groups: int):
        if n_groups <= 0:
            raise ValueError(f"need at least one bucket group, got {n_groups}")
        self.heap = heap
        self.n_groups = n_groups
        self._current: dict[tuple[int, PageKind], Page] = {}
        self._failed_groups: set[int] = set()
        self.stats = AllocationStats()

    # ------------------------------------------------------------------
    def allocate(
        self, group: int, nbytes: int, kind: PageKind = PageKind.GENERIC
    ) -> Allocation | None:
        """Allocate ``nbytes`` for ``group``, or None (POSTPONE)."""
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group {group} out of range [0, {self.n_groups})")
        self.stats.requests += 1
        key = (group, kind)
        page = self._current.get(key)
        offset = page.alloc(nbytes) if page is not None else None
        if offset is None:
            fresh = self.heap.alloc_page(kind, group)
            if fresh is None:
                self._failed_groups.add(group)
                self.stats.postponed += 1
                return None
            self.stats.pages_taken += 1
            self._current[key] = fresh
            page = fresh
            offset = page.alloc(nbytes)
            assert offset is not None  # nbytes <= page_size is checked by Page
        self.stats.bytes_allocated += nbytes
        return Allocation(
            page=page,
            offset=offset,
            cpu_addr=self.heap.cpu_addr(page, offset),
            gpu_addr=page.slot * self.heap.page_size + offset,
        )

    # ------------------------------------------------------------------
    def allocate_many(
        self,
        groups: np.ndarray,
        sizes: np.ndarray,
        kind: PageKind = PageKind.GENERIC,
        sorted_order: np.ndarray | None = None,
    ) -> BulkAllocation:
        """Bulk equivalent of calling :meth:`allocate` once per request.

        Requests are honoured *as if* served one at a time in array order:
        the same requests succeed, the same offsets are handed out, fresh
        pages are taken from the pool in the same order (so segment ids and
        slots match the sequential path exactly), and the allocator's stats
        and sticky failure set end up identical.  The fast path plans each
        bucket group's bump allocation with one cumulative sum per page;
        only the post-pool-exhaustion tail (where a smaller later request
        can still squeeze into a group's current page) falls back to the
        scalar loop.

        ``sorted_order`` optionally passes in a precomputed **stable**
        argsort of ``groups``.  It must preserve arrival order within each
        group -- page-fill boundaries depend on it -- so an argsort by
        bucket id does *not* qualify even though it groups correctly.
        """
        groups = np.asarray(groups, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        n = len(groups)
        if sizes.shape != (n,):
            raise ValueError("groups and sizes must have matching lengths")
        page_size = self.heap.page_size
        ok = np.zeros(n, dtype=bool)
        slot = np.full(n, -1, dtype=np.int64)
        segment = np.full(n, -1, dtype=np.int64)
        offset = np.full(n, -1, dtype=np.int64)
        if n == 0:
            addr = np.full(0, -1, dtype=np.int64)
            return BulkAllocation(ok, slot, segment, offset, addr, addr.copy())
        if int(groups.min()) < 0 or int(groups.max()) >= self.n_groups:
            raise ValueError("a group index is out of range")
        if int(sizes.min()) <= 0:
            raise ValueError("allocation sizes must be positive")
        if int(sizes.max()) > page_size:
            raise ValueError(
                f"an allocation exceeds the page size {page_size}"
            )

        if sorted_order is None:
            order = np.argsort(groups, kind="stable")
        else:
            order = sorted_order
        sorted_groups = groups[order]
        run_starts = np.flatnonzero(
            np.r_[True, sorted_groups[1:] != sorted_groups[:-1]]
        ).tolist()
        run_ends = run_starts[1:] + [n]

        # Phase A: plan every group's bump allocation assuming the pool is
        # infinite.  A "span" is a maximal run of requests served by one
        # page; a span opening a fresh page records the request index that
        # triggers the page take, so pages can later be granted in the
        # exact order the sequential path would take them.  One global
        # cumulative sum (in group-sorted order) serves every group's
        # bump-pointer arithmetic; page boundaries are binary searches.
        sorted_sizes = sizes[order]
        c = np.cumsum(sorted_sizes)
        spans = []  # [positions, offsets, Page | None (fresh, ungranted), group]
        triggers = []  # (triggering request index, span)
        searchsorted = np.searchsorted
        for s0, s1 in zip(run_starts, run_ends):
            g = int(sorted_groups[s0])
            page = self._current.get((g, kind))
            cur_used = page.used if page is not None else page_size
            i0 = s0
            consumed = int(c[s0 - 1]) if s0 else 0
            while i0 < s1:
                free = page_size - cur_used
                k = min(int(searchsorted(c, consumed + free, "right")), s1)
                if k == i0:  # next request needs a fresh page
                    span = [None, None, None, g]
                    triggers.append((int(order[i0]), span))
                    spans.append(span)
                    cur_used = 0
                    k = min(
                        int(searchsorted(c, consumed + page_size, "right")), s1
                    )
                    span[0] = order[i0:k]
                    span[1] = c[i0:k] - sorted_sizes[i0:k] - consumed
                else:
                    spans.append(
                        [order[i0:k],
                         cur_used + (c[i0:k] - sorted_sizes[i0:k] - consumed),
                         page, g]
                    )
                cur_used += int(c[k - 1] - consumed)
                consumed = int(c[k - 1])
                i0 = k

        # Phase B: grant fresh pages in trigger order.  When the pool runs
        # out, the remaining spans' requests are replayed through the
        # scalar path (they can still partially succeed from the group's
        # current page), which also records the sticky group failures.
        triggers.sort(key=lambda t: t[0])
        grantable = min(len(triggers), self.heap.pool.n_free)
        for _, span in triggers[:grantable]:
            fresh = self.heap.alloc_page(kind, span[3])
            assert fresh is not None
            self.stats.pages_taken += 1
            span[2] = fresh

        fallback: list[int] = []
        for pos, offs, page, g in spans:
            if page is None:  # fresh page the pool could not provide
                fallback.extend(pos.tolist())
                continue
            last = len(pos) - 1
            page.used = int(offs[last]) + int(sizes[pos[last]])
            self._current[(g, kind)] = page
            ok[pos] = True
            slot[pos] = page.slot
            segment[pos] = page.segment
            offset[pos] = offs
            self.stats.requests += len(pos)
            self.stats.bytes_allocated += int(sizes[pos].sum())
        for p in sorted(fallback):
            a = self.allocate(int(groups[p]), int(sizes[p]), kind)
            if a is not None:
                ok[p] = True
                slot[p] = a.page.slot
                segment[p] = a.page.segment
                offset[p] = a.offset

        cpu_addr = np.where(ok, segment * page_size + offset, -1)
        gpu_addr = np.where(ok, slot * page_size + offset, -1)
        return BulkAllocation(ok, slot, segment, offset, cpu_addr, gpu_addr)

    # ------------------------------------------------------------------
    @property
    def failed_fraction(self) -> float:
        """Fraction of bucket groups whose last allocation was postponed."""
        return len(self._failed_groups) / self.n_groups

    def reset_failures(self) -> None:
        """Clear sticky failures (called when eviction refills the pool)."""
        self._failed_groups.clear()

    def drop_stale_pages(self) -> None:
        """Forget current pages that were evicted out from under us."""
        self._current = {
            key: page
            for key, page in self._current.items()
            if self.heap.is_resident(page.segment)
        }
