"""Bucket-group allocator (Section IV-A).

Allocation load is distributed across the heap's pages by partitioning the
hash-table buckets into *bucket groups* of ``group_size`` contiguous buckets
and serving each group from its own current page (per page kind).  Threads
inserting into different groups therefore bump different free-list pointers,
which is the paper's scalability trick; the price is fragmentation, because
a group's page can end an iteration partially full.

An allocation is *postponed* (returns ``None``) when the group's current
page cannot fit the request and the pool has no fresh page to hand out.
Failures are sticky within an iteration -- nothing frees pages until the
end-of-iteration eviction -- and the fraction of failed groups drives the
basic method's 50%-halt policy (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memalloc.heap import GpuHeap
from repro.memalloc.pages import Page, PageKind

__all__ = ["AllocationStats", "BucketGroupAllocator"]


@dataclass
class AllocationStats:
    """Counters over the allocator's lifetime."""

    requests: int = 0
    postponed: int = 0
    pages_taken: int = 0
    bytes_allocated: int = 0


@dataclass
class Allocation:
    """Result of a successful allocation."""

    page: Page
    offset: int
    cpu_addr: int
    gpu_addr: int


class BucketGroupAllocator:
    """Per-bucket-group bump allocation over heap pages."""

    def __init__(self, heap: GpuHeap, n_groups: int):
        if n_groups <= 0:
            raise ValueError(f"need at least one bucket group, got {n_groups}")
        self.heap = heap
        self.n_groups = n_groups
        self._current: dict[tuple[int, PageKind], Page] = {}
        self._failed_groups: set[int] = set()
        self.stats = AllocationStats()

    # ------------------------------------------------------------------
    def allocate(
        self, group: int, nbytes: int, kind: PageKind = PageKind.GENERIC
    ) -> Allocation | None:
        """Allocate ``nbytes`` for ``group``, or None (POSTPONE)."""
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group {group} out of range [0, {self.n_groups})")
        self.stats.requests += 1
        key = (group, kind)
        page = self._current.get(key)
        offset = page.alloc(nbytes) if page is not None else None
        if offset is None:
            fresh = self.heap.alloc_page(kind, group)
            if fresh is None:
                self._failed_groups.add(group)
                self.stats.postponed += 1
                return None
            self.stats.pages_taken += 1
            self._current[key] = fresh
            page = fresh
            offset = page.alloc(nbytes)
            assert offset is not None  # nbytes <= page_size is checked by Page
        self.stats.bytes_allocated += nbytes
        return Allocation(
            page=page,
            offset=offset,
            cpu_addr=self.heap.cpu_addr(page, offset),
            gpu_addr=page.slot * self.heap.page_size + offset,
        )

    # ------------------------------------------------------------------
    @property
    def failed_fraction(self) -> float:
        """Fraction of bucket groups whose last allocation was postponed."""
        return len(self._failed_groups) / self.n_groups

    def reset_failures(self) -> None:
        """Clear sticky failures (called when eviction refills the pool)."""
        self._failed_groups.clear()

    def drop_stale_pages(self) -> None:
        """Forget current pages that were evicted out from under us."""
        self._current = {
            key: page
            for key, page in self._current.items()
            if self.heap.is_resident(page.segment)
        }
