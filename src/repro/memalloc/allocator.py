"""Bucket-group allocator (Section IV-A).

Allocation load is distributed across the heap's pages by partitioning the
hash-table buckets into *bucket groups* of ``group_size`` contiguous buckets
and serving each group from its own current page (per page kind).  Threads
inserting into different groups therefore bump different free-list pointers,
which is the paper's scalability trick; the price is fragmentation, because
a group's page can end an iteration partially full.

An allocation is *postponed* (returns ``None``) when the group's current
page cannot fit the request and the pool has no fresh page to hand out.
Failures are sticky within an iteration -- nothing frees pages until the
end-of-iteration eviction -- and the fraction of failed groups drives the
basic method's 50%-halt policy (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.memalloc.heap import GpuHeap
from repro.memalloc.pages import KIND_BY_CODE, Page, PageKind

__all__ = ["AllocationStats", "BucketGroupAllocator", "BulkAllocation"]


def _stable_order(keys: np.ndarray) -> np.ndarray:
    """``argsort(kind="stable")`` via a composite quicksort key; valid for
    small-cardinality keys (group/kind composites) where ``keys * n + n``
    cannot overflow int64."""
    n = len(keys)
    return (keys.astype(np.int64) * n + np.arange(n)).argsort()


@dataclass
class AllocationStats:
    """Counters over the allocator's lifetime."""

    requests: int = 0
    postponed: int = 0
    pages_taken: int = 0
    bytes_allocated: int = 0
    #: logically deleted (tombstoned) entries and their byte sizes.  The
    #: slots stay allocated -- structural reclaim would dangle the CPU
    #: pointer chains -- so this tracks the space a future compaction pass
    #: could recover; the sanitizer reconciles it against the chain census.
    entries_tombstoned: int = 0
    bytes_tombstoned: int = 0


@dataclass
class Allocation:
    """Result of a successful allocation."""

    page: Page
    offset: int
    cpu_addr: int
    gpu_addr: int


@dataclass
class BulkAllocation:
    """Result of :meth:`BucketGroupAllocator.allocate_many`.

    All arrays are aligned with the request order; ``slot``/``segment``/
    ``offset``/``cpu_addr``/``gpu_addr`` are only meaningful where ``ok``.
    """

    ok: np.ndarray  # (n,) bool
    slot: np.ndarray  # (n,) int64
    segment: np.ndarray  # (n,) int64
    offset: np.ndarray  # (n,) int64
    cpu_addr: np.ndarray  # (n,) int64
    gpu_addr: np.ndarray  # (n,) int64


class BucketGroupAllocator:
    """Per-bucket-group bump allocation over heap pages."""

    def __init__(self, heap: GpuHeap, n_groups: int):
        if n_groups <= 0:
            raise ValueError(f"need at least one bucket group, got {n_groups}")
        self.heap = heap
        self.n_groups = n_groups
        self._current: dict[tuple[int, PageKind], Page] = {}
        self._failed_groups: set[int] = set()
        self.stats = AllocationStats()

    # ------------------------------------------------------------------
    def allocate(
        self, group: int, nbytes: int, kind: PageKind = PageKind.GENERIC
    ) -> Allocation | None:
        """Allocate ``nbytes`` for ``group``, or None (POSTPONE)."""
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group {group} out of range [0, {self.n_groups})")
        self.stats.requests += 1
        key = (group, kind)
        page = self._current.get(key)
        offset = page.alloc(nbytes) if page is not None else None
        if offset is None:
            fresh = self.heap.alloc_page(kind, group)
            if fresh is None:
                self._failed_groups.add(group)
                self.stats.postponed += 1
                return None
            self.stats.pages_taken += 1
            self._current[key] = fresh
            page = fresh
            offset = page.alloc(nbytes)
            assert offset is not None  # nbytes <= page_size is checked by Page
        self.stats.bytes_allocated += nbytes
        # the caller writes a fresh entry into this extent; dirty the page
        # for the integrity layer before the bytes change under its seal
        self.heap.note_write(page.segment)
        return Allocation(
            page=page,
            offset=offset,
            cpu_addr=self.heap.cpu_addr(page, offset),
            gpu_addr=page.slot * self.heap.page_size + offset,
        )

    # ------------------------------------------------------------------
    def allocate_many(
        self,
        groups: np.ndarray,
        sizes: np.ndarray,
        kind: PageKind = PageKind.GENERIC,
        sorted_order: np.ndarray | None = None,
        kinds: np.ndarray | None = None,
    ) -> BulkAllocation:
        """Bulk equivalent of calling :meth:`allocate` once per request.

        Requests are honoured *as if* served one at a time in array order:
        the same requests succeed, the same offsets are handed out, fresh
        pages are taken from the pool in the same order (so segment ids and
        slots match the sequential path exactly), and the allocator's stats
        and sticky failure set end up identical.  The fast path plans each
        bucket group's bump allocation with one cumulative sum per page;
        only the post-pool-exhaustion tail (where a smaller later request
        can still squeeze into a group's current page) falls back to the
        scalar loop.

        ``sorted_order`` optionally passes in a precomputed **stable**
        argsort of ``groups``.  It must preserve arrival order within each
        group -- page-fill boundaries depend on it -- so an argsort by
        bucket id does *not* qualify even though it groups correctly.

        ``kinds`` optionally gives a per-request page kind as an int64 array
        of :data:`repro.memalloc.pages.KIND_CODES` codes; the multi-valued
        organization interleaves KEY and VALUE requests in one call so fresh
        pages are pulled from the shared pool in exactly the order the
        sequential walk would pull them.  When set, ``kind`` is ignored and
        ``sorted_order`` (if given) must be a stable sort of the
        (group, kind) pairs.
        """
        groups = np.asarray(groups, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        n = len(groups)
        if sizes.shape != (n,):
            raise ValueError("groups and sizes must have matching lengths")
        page_size = self.heap.page_size
        ok = np.zeros(n, dtype=bool)
        slot = np.full(n, -1, dtype=np.int64)
        segment = np.full(n, -1, dtype=np.int64)
        offset = np.full(n, -1, dtype=np.int64)
        if n == 0:
            addr = np.full(0, -1, dtype=np.int64)
            return BulkAllocation(ok, slot, segment, offset, addr, addr.copy())
        codes, composite = self._validate_bulk(groups, sizes, kinds)

        if sorted_order is None:
            order = _stable_order(composite)
        else:
            order = sorted_order

        # Fast path: a run whose total fits in its (group, kind) current
        # page needs no span planning at all -- every request bump-fits, no
        # fresh page is taken, so the whole run is one vectorized scatter.
        # At small batch sizes this is the common case (most runs are one
        # or two requests) and skipping the per-span binary searches in
        # _plan_spans is the difference between O(runs) searchsorted calls
        # and a handful of array ops per batch.
        sorted_comp = composite[order]
        run_starts = np.flatnonzero(np.r_[True, sorted_comp[1:] != sorted_comp[:-1]])
        run_ends = np.r_[run_starts[1:], n]
        sorted_sizes = sizes[order]
        c = np.cumsum(sorted_sizes)
        consumed = np.where(run_starts > 0, c[run_starts - 1], 0)
        run_totals = c[run_ends - 1] - consumed
        fit_runs = np.zeros(len(run_starts), dtype=bool)
        fit_pages = []  # (run index, current page)
        for r, s0 in enumerate(run_starts.tolist()):
            p = int(order[s0])
            g = int(groups[p])
            kk = kind if codes is None else KIND_BY_CODE[int(codes[p])]
            page = self._current.get((g, kk))
            if page is not None and page.free >= run_totals[r]:
                fit_runs[r] = True
                fit_pages.append((r, page))
        fit_elem = np.repeat(fit_runs, run_ends - run_starts)
        if fit_pages:
            fit_lens = (run_ends - run_starts)[fit_runs]
            pos = order[fit_elem]
            used_rep = np.repeat([pg.used for _r, pg in fit_pages], fit_lens)
            base_rep = np.repeat(consumed[fit_runs], fit_lens)
            ok[pos] = True
            slot[pos] = np.repeat([pg.slot for _r, pg in fit_pages], fit_lens)
            segment[pos] = np.repeat(
                [pg.segment for _r, pg in fit_pages], fit_lens
            )
            offset[pos] = used_rep + c[fit_elem] - sorted_sizes[fit_elem] - base_rep
            self.stats.requests += len(pos)
            self.stats.bytes_allocated += int(sorted_sizes[fit_elem].sum())
            for r, page in fit_pages:
                page.used += int(run_totals[r])
                self.heap.note_write(page.segment)

        if fit_runs.all():
            spans, triggers = [], []
        else:
            spans, triggers = self._plan_spans(
                order[~fit_elem], composite, groups, sizes, codes, kind
            )

        # Phase B: grant fresh pages in trigger order.  When the pool runs
        # out, the remaining spans' requests are replayed through the
        # scalar path (they can still partially succeed from the group's
        # current page), which also records the sticky group failures.
        triggers.sort(key=lambda t: t[0])
        grantable = min(len(triggers), self.heap.pool.n_free)
        for _, span in triggers[:grantable]:
            fresh = self.heap.alloc_page(span[4], span[3])
            if fresh is None:
                # fault injection can deny page grants even while n_free
                # looks healthy; the remaining spans drop to the scalar
                # fallback, which re-attempts (and re-observes the denial)
                # request by request exactly like the sequential path.
                break
            self.stats.pages_taken += 1
            span[2] = fresh

        fallback: list[int] = []
        for pos, offs, page, g, k in spans:
            if page is None:  # fresh page the pool could not provide
                fallback.extend(pos.tolist())
                continue
            last = len(pos) - 1
            page.used = int(offs[last]) + int(sizes[pos[last]])
            self._current[(g, k)] = page
            ok[pos] = True
            slot[pos] = page.slot
            segment[pos] = page.segment
            offset[pos] = offs
            self.stats.requests += len(pos)
            self.stats.bytes_allocated += int(sizes[pos].sum())
            self.heap.note_write(page.segment)
        if fallback:
            fallback.sort()
            if self.heap.pool.n_free == 0:
                self._retry_exhausted(
                    fallback, groups, sizes, codes, kind,
                    ok, slot, segment, offset,
                )
            else:
                # a page grant was denied while the pool still holds slots
                # (fault injection): replay request by request so every
                # retry re-observes the injector exactly like the
                # sequential path would
                for p in fallback:
                    k = kind if codes is None else KIND_BY_CODE[int(codes[p])]
                    a = self.allocate(int(groups[p]), int(sizes[p]), k)
                    if a is not None:
                        ok[p] = True
                        slot[p] = a.page.slot
                        segment[p] = a.page.segment
                        offset[p] = a.offset

        cpu_addr = np.where(ok, segment * page_size + offset, -1)
        gpu_addr = np.where(ok, slot * page_size + offset, -1)
        return BulkAllocation(ok, slot, segment, offset, cpu_addr, gpu_addr)

    def _retry_exhausted(
        self,
        fallback: list[int],
        groups: np.ndarray,
        sizes: np.ndarray,
        codes: np.ndarray | None,
        kind: PageKind,
        ok: np.ndarray,
        slot: np.ndarray,
        segment: np.ndarray,
        offset: np.ndarray,
    ) -> None:
        """One batched retry pass over the requests left after pool exhaustion.

        With ``n_free == 0`` every fresh-page attempt is a guaranteed denial,
        so a surviving request's fate depends only on its (group, kind)
        current page: it bump-fits or it postpones.  Each surviving run is
        therefore retried in one pass -- a plain-integer bump simulation in
        arrival order plus one batched result scatter per run -- instead of
        degrading the whole tail to element-at-a-time :meth:`allocate` calls.
        Stats, sticky failures, and dirty-page notes end up identical to the
        sequential replay (the counters are commutative and a denied
        :meth:`~repro.memalloc.heap.GpuHeap.alloc_page` mutates nothing).
        """
        fb = np.asarray(fallback, dtype=np.int64)  # already in arrival order
        fcodes = np.zeros(len(fb), np.int64) if codes is None else codes[fb]
        comp = groups[fb] * len(KIND_BY_CODE) + fcodes
        run_order = np.argsort(comp, kind="stable")
        sfb = fb[run_order]
        scomp = comp[run_order]
        bounds = np.flatnonzero(
            np.r_[True, scomp[1:] != scomp[:-1]]
        ).tolist() + [len(sfb)]
        for a, b in zip(bounds, bounds[1:]):
            run = sfb[a:b]
            g = int(groups[run[0]])
            kk = kind if codes is None else KIND_BY_CODE[int(codes[run[0]])]
            page = self._current.get((g, kk))
            free = page.free if page is not None else 0
            used = page.used if page is not None else 0
            taken_pos: list[int] = []
            taken_off: list[int] = []
            n_fail = 0
            for p, sz in zip(run.tolist(), sizes[run].tolist()):
                if sz <= free:  # a smaller later request can still fit
                    taken_pos.append(p)
                    taken_off.append(used)
                    used += sz
                    free -= sz
                else:
                    n_fail += 1
            self.stats.requests += b - a
            if n_fail:
                self.stats.postponed += n_fail
                self._failed_groups.add(g)
            if taken_pos:
                page.used = used
                tp = np.asarray(taken_pos, dtype=np.int64)
                ok[tp] = True
                slot[tp] = page.slot
                segment[tp] = page.segment
                offset[tp] = np.asarray(taken_off, dtype=np.int64)
                self.stats.bytes_allocated += int(sizes[tp].sum())
                self.heap.note_write(page.segment)

    def _validate_bulk(
        self,
        groups: np.ndarray,
        sizes: np.ndarray,
        kinds: np.ndarray | None,
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """Shared request validation; returns (codes, composite run key)."""
        if int(groups.min()) < 0 or int(groups.max()) >= self.n_groups:
            raise ValueError("a group index is out of range")
        if int(sizes.min()) <= 0:
            raise ValueError("allocation sizes must be positive")
        if int(sizes.max()) > self.heap.page_size:
            raise ValueError(
                f"an allocation exceeds the page size {self.heap.page_size}"
            )
        if kinds is None:
            return None, groups
        codes = np.asarray(kinds, dtype=np.int64)
        if codes.shape != groups.shape:
            raise ValueError("kinds must match groups in length")
        if len(codes) and (
            int(codes.min()) < 0 or int(codes.max()) >= len(KIND_BY_CODE)
        ):
            raise ValueError("a kind code is out of range")
        return codes, groups * len(KIND_BY_CODE) + codes

    def _plan_spans(
        self,
        order: np.ndarray,
        composite: np.ndarray,
        groups: np.ndarray,
        sizes: np.ndarray,
        codes: np.ndarray | None,
        kind: PageKind,
    ) -> tuple[list, list]:
        """Phase A: plan every (group, kind) run's bump allocation assuming
        the pool is infinite.  Read-only with respect to allocator and heap
        state.

        A "span" is a maximal run of requests served by one page; a span
        opening a fresh page records the request index that triggers the
        page take, so pages can later be granted in the exact order the
        sequential path would take them.  One global cumulative sum (in
        run-sorted order) serves every run's bump-pointer arithmetic; page
        boundaries are binary searches.
        """
        page_size = self.heap.page_size
        n = len(order)
        sorted_comp = composite[order]
        run_starts = np.flatnonzero(
            np.r_[True, sorted_comp[1:] != sorted_comp[:-1]]
        ).tolist()
        run_ends = run_starts[1:] + [n]
        sorted_sizes = sizes[order]
        c = np.cumsum(sorted_sizes)
        spans = []  # [positions, offsets, Page | None (fresh), group, kind]
        triggers = []  # (triggering request index, span)
        searchsorted = np.searchsorted
        for s0, s1 in zip(run_starts, run_ends):
            g = int(groups[order[s0]])
            kk = kind if codes is None else KIND_BY_CODE[int(codes[order[s0]])]
            page = self._current.get((g, kk))
            cur_used = page.used if page is not None else page_size
            i0 = s0
            consumed = int(c[s0 - 1]) if s0 else 0
            while i0 < s1:
                free = page_size - cur_used
                j = min(int(searchsorted(c, consumed + free, "right")), s1)
                if j == i0:  # next request needs a fresh page
                    span = [None, None, None, g, kk]
                    triggers.append((int(order[i0]), span))
                    spans.append(span)
                    cur_used = 0
                    j = min(
                        int(searchsorted(c, consumed + page_size, "right")), s1
                    )
                    span[0] = order[i0:j]
                    span[1] = c[i0:j] - sorted_sizes[i0:j] - consumed
                else:
                    spans.append(
                        [order[i0:j],
                         cur_used + (c[i0:j] - sorted_sizes[i0:j] - consumed),
                         page, g, kk]
                    )
                cur_used += int(c[j - 1] - consumed)
                consumed = int(c[j - 1])
                i0 = j
        return spans, triggers

    def plan_pages_needed(
        self,
        groups: np.ndarray,
        sizes: np.ndarray,
        kind: PageKind = PageKind.GENERIC,
        kinds: np.ndarray | None = None,
    ) -> int:
        """Fresh pages a failure-free sequential run of these requests takes.

        Read-only: neither the pool nor any current page is touched.  When
        the result is ``<= heap.pool.n_free``, a subsequent
        :meth:`allocate_many` of the very same requests is guaranteed to
        succeed on every request -- the pre-aggregated multi-valued kernel
        uses this pre-flight to decide whether the no-postponement fast path
        applies before mutating anything.
        """
        groups = np.asarray(groups, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.shape != groups.shape:
            raise ValueError("groups and sizes must have matching lengths")
        if len(groups) == 0:
            return 0
        codes, composite = self._validate_bulk(groups, sizes, kinds)
        order = _stable_order(composite)
        _, triggers = self._plan_spans(order, composite, groups, sizes,
                                       codes, kind)
        return len(triggers)

    def record_denied_retries(self, count: int, groups=None) -> None:
        """Account ``count`` requests a batched kernel proved would be denied.

        Within one iteration a failed allocation mutates nothing except the
        request/postpone counters and the sticky failure set: the pool never
        refills mid-iteration and a group's current page only fills further,
        so once a request of some size fails for a (group, kind), every
        later same-or-larger request there fails too.  The scalar reference
        walk issues those doomed repeat requests for real; pre-aggregated
        kernels skip the walk but must keep the allocator's counters
        identical, which this records arithmetically.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self.stats.requests += count
        self.stats.postponed += count
        if groups is not None:
            self._failed_groups.update(int(g) for g in np.unique(groups))

    # ------------------------------------------------------------------
    def note_tombstone(self, nbytes: int) -> None:
        """Record that an ``nbytes`` entry was logically deleted in place.

        Tombstoned extents remain allocated (and reachable through their
        chains), so ``bytes_allocated`` is untouched; this only sizes the
        reclaimable backlog for a future compaction pass.
        """
        if nbytes <= 0:
            raise ValueError("tombstoned entry size must be positive")
        self.stats.entries_tombstoned += 1
        self.stats.bytes_tombstoned += nbytes

    # ------------------------------------------------------------------
    def group_failed(self, group: int) -> bool:
        """Did ``group``'s last allocation this iteration get postponed?

        Mutation batches use this as their postponement gate: an op whose
        bucket group is sticky-failed postpones up front, so a postponed
        delete/update can never be overtaken by a later same-key op (same
        key -> same bucket -> same group) before its replay.
        """
        return group in self._failed_groups

    def note_failure(self, group: int) -> None:
        """Mark ``group`` sticky-failed without an allocation attempt.

        Mutation paths that postpone for a non-allocator reason must still
        poison the group, or later same-key ops would slip past the gate.
        """
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group {group} out of range [0, {self.n_groups})")
        self._failed_groups.add(group)

    @property
    def has_failures(self) -> bool:
        """Any bucket group sticky-failed this iteration?"""
        return bool(self._failed_groups)

    @property
    def failed_fraction(self) -> float:
        """Fraction of bucket groups whose last allocation was postponed."""
        return len(self._failed_groups) / self.n_groups

    def reset_failures(self) -> None:
        """Clear sticky failures (called when eviction refills the pool)."""
        self._failed_groups.clear()

    def drop_stale_pages(self) -> None:
        """Forget current pages that were evicted out from under us."""
        self._current = {
            key: page
            for key, page in self._current.items()
            if self.heap.is_resident(page.segment)
        }
