"""Address encoding for the dual-pointer scheme.

The paper stores *two* pointers wherever a hash table would normally store
one: one valid in GPU memory while the data is resident, and one valid at the
data's eventual location in CPU memory (Section III-B).  We realize this
with two flat address spaces sharing one encoding::

    address = region_index * page_size + offset_within_page

* **GPU addresses** use the page's current *physical slot* in the heap arena
  as the region index.  They are fast to dereference but become stale once
  the page is evicted and its slot reused.
* **CPU addresses** use the page's *segment id* -- a monotonically increasing
  number assigned when the page is taken from the pool, which names the spot
  in the CPU-side segment store where the page's bytes will land on
  eviction.  Segment ids are never reused, so CPU addresses stay valid
  forever, which is what makes the finished table traversable from the CPU
  side (and lets chains thread through multiple evicted generations).

``NULL`` (-1) terminates chains in both spaces.
"""

from __future__ import annotations

__all__ = ["NULL", "encode", "decode"]

#: Chain terminator in both address spaces.
NULL = -1


def encode(region: int, offset: int, page_size: int) -> int:
    """Pack a (region, offset) pair into a flat address."""
    if region < 0:
        raise ValueError(f"negative region index: {region}")
    if not 0 <= offset < page_size:
        raise ValueError(f"offset {offset} outside page of size {page_size}")
    return region * page_size + offset


def decode(address: int, page_size: int) -> tuple[int, int]:
    """Unpack a flat address into its (region, offset) pair."""
    if address < 0:
        raise ValueError(f"cannot decode NULL/negative address: {address}")
    return divmod(address, page_size)
