"""Dynamic memory allocator for the GPU-side hash-table heap.

Implements Section IV-A of the paper:

* the heap is pre-allocated out of whatever device memory remains after all
  other structures (:class:`~repro.memalloc.heap.GpuHeap` reserves it from a
  :class:`~repro.gpusim.memory.DeviceMemory`),
* the heap is partitioned into fixed-size pages managed by a free pool,
* hash-table buckets are partitioned into *bucket groups*, and each group
  allocates from its own current page, spreading free-list contention across
  many pages at the cost of fragmentation
  (:class:`~repro.memalloc.allocator.BucketGroupAllocator`),
* when pages are evicted, their bytes move to a CPU-side *segment store*,
  where they remain addressable through the entries' CPU pointers.

Addresses are explained in :mod:`repro.memalloc.address`: every page gets a
stable *segment id* at allocation time, which doubles as the page's eventual
location in CPU memory -- this is what lets entries carry both a GPU and a
CPU pointer (Section III-B).
"""

from repro.memalloc.address import NULL, decode, encode
from repro.memalloc.allocator import (
    AllocationStats,
    BucketGroupAllocator,
    BulkAllocation,
)
from repro.memalloc.heap import GpuHeap
from repro.memalloc.pages import Page, PageKind, PagePool

__all__ = [
    "AllocationStats",
    "BucketGroupAllocator",
    "BulkAllocation",
    "GpuHeap",
    "NULL",
    "Page",
    "PageKind",
    "PagePool",
    "decode",
    "encode",
]
