"""The GPU heap: resident pages plus the CPU-side segment store.

:class:`GpuHeap` is the centre of the larger-than-memory design.  It owns

* a :class:`~repro.memalloc.pages.PagePool` over a contiguous arena standing
  in for the pre-allocated GPU heap (sized, per Section IV-A, to whatever
  device memory remains after other structures),
* a *residency map* from stable segment ids to the physical slot currently
  holding each resident page, and
* the *segment store*: CPU memory receiving page bytes on eviction, indexed
  by segment id, where they stay addressable through CPU pointers forever.

Because a page's segment id is assigned when the page is taken from the pool
and never reused, the CPU address of every entry is known the moment it is
allocated -- that is what makes the paper's dual-pointer scheme possible.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.gpusim.memory import DeviceMemory
from repro.memalloc.address import NULL, decode, encode
from repro.memalloc.pages import Page, PageKind, PagePool

__all__ = ["GpuHeap"]


class GpuHeap:
    """Paged heap with eviction to a CPU-side segment store."""

    def __init__(
        self,
        heap_bytes: int,
        page_size: int,
        device_memory: DeviceMemory | None = None,
        name: str = "hashtable-heap",
    ):
        if device_memory is not None:
            device_memory.reserve(name, heap_bytes)
        self.pool = PagePool(heap_bytes, page_size)
        self.page_size = page_size
        #: segment id -> resident Page
        self._resident: dict[int, Page] = {}
        #: segment id -> evicted page bytes (a copy, CPU-side)
        self._store: dict[int, np.ndarray] = {}
        #: segment id -> (kind, group, used) of the evicted page
        self._store_meta: dict[int, tuple[PageKind, int, int]] = {}
        self._next_segment = 0
        #: bytes copied to CPU over the lifetime of the heap
        self.bytes_evicted = 0
        #: unused bytes inside evicted pages (fragmentation, Section IV-A)
        self.fragmented_bytes = 0
        #: optional :class:`repro.integrity.PageIntegrity` manager; None
        #: keeps every hook below a single attribute test (bit-identity
        #: with pre-integrity behaviour when the feature is off)
        self.integrity = None
        #: bumped whenever a page enters or leaves the arena; cached
        #: chain views (repro.core.chainview) are stamped against it
        self.residency_epoch = 0
        #: bumped by :meth:`note_write`, i.e. on every in-place entry
        #: write -- the other half of the chain-view validity stamp
        self.write_epoch = 0
        self._slot_map: np.ndarray | None = None
        self._slot_map_epoch = -1

    # ------------------------------------------------------------------
    # page lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def from_remaining(
        cls,
        device_memory: DeviceMemory,
        page_size: int,
        name: str = "hashtable-heap",
    ) -> "GpuHeap":
        """Size the heap to all remaining free device memory (Section IV-A)."""
        free = device_memory.free
        heap_bytes = (free // page_size) * page_size
        return cls(heap_bytes, page_size, device_memory, name)

    def alloc_page(self, kind: PageKind, group: int) -> Page | None:
        """Take a page from the pool, or None when the pool is exhausted."""
        slot = self.pool.take()
        if slot is None:
            return None
        page = Page(
            slot=slot,
            segment=self._next_segment,
            kind=kind,
            group=group,
            page_size=self.page_size,
        )
        self._next_segment += 1
        self._resident[page.segment] = page
        self.residency_epoch += 1
        return page

    def evict(self, pages: Iterable[Page]) -> int:
        """Copy pages to the segment store and recycle their slots.

        Returns the number of bytes that crossed to CPU memory (full pages:
        the DMA engine moves whole pages, which is also how the fragmentation
        cost of partially used pages manifests).
        """
        moved = 0
        integrity = self.integrity
        for page in pages:
            if self._resident.get(page.segment) is not page:
                raise ValueError(f"segment {page.segment} is not resident")
            src = self.pool.slot_view(page.slot)
            if integrity is None:
                self._store[page.segment] = src.copy()
            else:
                # checksum-carrying transfer: seal the source, copy, and
                # verify on arrival (a torn DMA is re-copied with the
                # retry cost charged at the next iteration boundary)
                self._store[page.segment] = integrity.checked_transfer(
                    page.segment, src
                )
            self._store_meta[page.segment] = (page.kind, page.group, page.used)
            del self._resident[page.segment]
            self.pool.release(page.slot)
            moved += self.page_size
            self.fragmented_bytes += page.free
        if moved:
            self.residency_epoch += 1
        self.bytes_evicted += moved
        return moved

    def page_in(self, segment: int) -> Page | None:
        """Bring an evicted segment back into a free heap slot.

        Used by SEPO lookups (the read-direction analogue of eviction).
        Returns the re-resident page, or None when the pool is exhausted.
        """
        if segment in self._resident:
            return self._resident[segment]
        if segment not in self._store:
            raise KeyError(f"segment {segment} was never evicted")
        if self.integrity is not None:
            # verify the source bytes before they re-enter the GPU arena
            self.integrity.check_page_in(self, segment)
        slot = self.pool.take()
        if slot is None:
            return None
        kind, group, used = self._store_meta[segment]
        self.pool.slot_view(slot)[:] = self._store.pop(segment)
        del self._store_meta[segment]
        if self.integrity is not None:
            self.integrity.on_page_in(segment)
        page = Page(
            slot=slot, segment=segment, kind=kind, group=group,
            page_size=self.page_size, used=used,
        )
        self._resident[segment] = page
        self.residency_epoch += 1
        return page

    def evict_all(self, keep_pinned: bool = False) -> int:
        """Evict every resident page (optionally retaining pinned ones)."""
        victims = [
            p for p in self._resident.values() if not (keep_pinned and p.pinned)
        ]
        return self.evict(victims)

    # ------------------------------------------------------------------
    # residency and addressing
    # ------------------------------------------------------------------
    def resident_page(self, segment: int) -> Page | None:
        return self._resident.get(segment)

    def resident_slot_map(self) -> np.ndarray:
        """Segment id -> physical slot, -1 when not resident.

        The array form of the residency map, for bulk address
        translation in the chain-view materializer; rebuilt lazily and
        cached per :attr:`residency_epoch`.
        """
        if (
            self._slot_map is not None
            and self._slot_map_epoch == self.residency_epoch
        ):
            return self._slot_map
        m = np.full(max(self._next_segment, 1), -1, dtype=np.int64)
        for seg, page in self._resident.items():
            m[seg] = page.slot
        self._slot_map = m
        self._slot_map_epoch = self.residency_epoch
        return m

    def is_resident(self, segment: int) -> bool:
        return segment in self._resident

    def addr_resident(self, cpu_addr: int) -> bool:
        if cpu_addr == NULL:
            return False
        segment, _ = decode(cpu_addr, self.page_size)
        return segment in self._resident

    def gpu_addr(self, cpu_addr: int) -> int:
        """Translate a CPU address to the current GPU address, or NULL."""
        if cpu_addr == NULL:
            return NULL
        segment, offset = decode(cpu_addr, self.page_size)
        page = self._resident.get(segment)
        if page is None:
            return NULL
        return encode(page.slot, offset, self.page_size)

    def cpu_addr(self, page: Page, offset: int) -> int:
        return encode(page.segment, offset, self.page_size)

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def resolve(self, cpu_addr: int) -> tuple[np.ndarray, int]:
        """Return (page buffer, offset) for an address, wherever it lives.

        Resident pages resolve into the GPU arena (a view); evicted pages
        resolve into their CPU segment-store copy.
        """
        segment, offset = decode(cpu_addr, self.page_size)
        page = self._resident.get(segment)
        if page is not None:
            return self.pool.slot_view(page.slot), offset
        if self.integrity is not None:
            self.integrity.check_read(self, segment)
        try:
            return self._store[segment], offset
        except KeyError:
            raise KeyError(
                f"segment {segment} is neither resident nor evicted"
            ) from None

    def segment_view(self, segment: int) -> np.ndarray:
        """The bytes of a segment, resident or evicted."""
        page = self._resident.get(segment)
        if page is not None:
            return self.pool.slot_view(page.slot)
        if self.integrity is not None:
            self.integrity.check_read(self, segment)
        return self._store[segment]

    def note_write(self, segment: int) -> None:
        """Record an in-place write to a *resident* page.

        Every write path that bypasses the allocator (tombstone flags,
        in-place combines, value-head splices, chain relinks) must call
        this so the integrity layer can invalidate the page's sealed CRC.
        Always bumps :attr:`write_epoch` (chain-view invalidation) even
        when integrity is off; the CRC part is a no-op when integrity is
        off or the page was never sealed.
        """
        self.write_epoch += 1
        if self.integrity is not None:
            self.integrity.note_write(segment)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_free_pages(self) -> int:
        """Pages the pool can still hand out this iteration."""
        return self.pool.n_free

    @property
    def resident_pages(self) -> list[Page]:
        return list(self._resident.values())

    @property
    def resident_bytes(self) -> int:
        return len(self._resident) * self.page_size

    @property
    def stored_bytes(self) -> int:
        return len(self._store) * self.page_size

    @property
    def total_table_bytes(self) -> int:
        """Footprint of the table so far, resident + evicted."""
        return self.resident_bytes + self.stored_bytes
