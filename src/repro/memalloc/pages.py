"""Heap pages and the free-page pool.

The heap arena is divided into fixed-size pages.  Within a page, allocation
is a bump pointer: hash-table entries are never freed individually -- whole
pages are reclaimed at once when the heap is evicted, exactly as in the
paper, where the end-of-iteration copyback "frees up the heap ... adding the
pages back to the memory pool".

Pages carry a :class:`PageKind` because the multi-valued bucket organization
stores keys and values on *separate* pages (Section IV-B), which is what
allows value pages to be evicted while key pages with pending keys are
retained (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

__all__ = ["Page", "PageKind", "PagePool", "KIND_CODES", "KIND_BY_CODE"]


class PageKind(Enum):
    """What a page stores; drives per-kind eviction policies."""

    GENERIC = "generic"  # basic & combining methods: keys and values together
    KEY = "key"  # multi-valued method: key entries
    VALUE = "value"  # multi-valued method: value-list nodes


#: Stable integer codes for per-request kind arrays in bulk allocation
#: (numpy arrays cannot hold PageKind members without object dtype).
KIND_CODES = {PageKind.GENERIC: 0, PageKind.KEY: 1, PageKind.VALUE: 2}
KIND_BY_CODE = (PageKind.GENERIC, PageKind.KEY, PageKind.VALUE)


@dataclass
class Page:
    """A page currently resident in the heap arena."""

    slot: int  # physical slot index in the arena
    segment: int  # stable segment id (eventual CPU location)
    kind: PageKind
    group: int  # bucket group this page serves
    page_size: int
    used: int = 0  # bump-allocation watermark
    #: set for multi-valued KEY pages holding a key with un-inserted values
    pinned: bool = field(default=False)

    @property
    def free(self) -> int:
        return self.page_size - self.used

    def alloc(self, nbytes: int) -> int | None:
        """Bump-allocate ``nbytes``; returns the offset or None if full."""
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive: {nbytes}")
        if nbytes > self.page_size:
            raise ValueError(
                f"allocation of {nbytes} bytes exceeds page size {self.page_size}"
            )
        if nbytes > self.free:
            return None
        offset = self.used
        self.used += nbytes
        return offset


class PagePool:
    """Owns the heap arena and hands out physical page slots.

    The arena is a single contiguous uint8 buffer, as a real GPU heap would
    be; views into it are handed around as numpy slices (no copies).
    """

    def __init__(self, heap_bytes: int, page_size: int):
        if page_size <= 0:
            raise ValueError(f"page size must be positive: {page_size}")
        if heap_bytes < page_size:
            raise ValueError(
                f"heap of {heap_bytes} bytes cannot hold a single "
                f"{page_size}-byte page"
            )
        self.page_size = page_size
        self.n_slots = heap_bytes // page_size
        self.arena = np.zeros(self.n_slots * page_size, dtype=np.uint8)
        # LIFO reuse keeps the working set of slots small.
        self._free_slots: list[int] = list(range(self.n_slots - 1, -1, -1))
        #: physical slots retired by the integrity layer (repeated CRC
        #: failures suggest a bad region of device memory); never reissued
        self.quarantined: set[int] = set()
        #: slots flagged for retirement that are still hosting a live page;
        #: they move to :attr:`quarantined` at their next release
        self._retire_pending: set[int] = set()

    @property
    def n_free(self) -> int:
        return len(self._free_slots)

    @property
    def n_used(self) -> int:
        return self.n_slots - self.n_free

    def take(self) -> int | None:
        """Pop a free slot (zeroed), or None if the pool is exhausted.

        Zeroing makes page bytes canonical: without it, recycled slots
        leak a previous tenant's bytes into the new page's padding and
        post-watermark region, and a checkpoint/resume cycle (which starts
        from a fresh arena) could never be byte-identical to the
        uninterrupted run it must reproduce.
        """
        if not self._free_slots:
            return None
        slot = self._free_slots.pop()
        start = slot * self.page_size
        self.arena[start : start + self.page_size] = 0
        return slot

    def can_take(self, k: int) -> bool:
        """Probe whether ``k`` successive takes would succeed, without
        observably changing the pool.

        Slots are taken for real and released in reverse order, restoring
        the exact LIFO stack; zeroing free slots is invisible (their bytes
        are garbage by contract, and a real take zeroes again).  Going
        through :meth:`take` matters: fault injectors that deny takes while
        ``n_free`` still looks healthy are detected, which the pre-flight
        of the no-postponement insert kernels relies on.
        """
        if type(self).take is PagePool.take and "take" not in self.__dict__:
            # stock pool: a free slot IS a successful take (single-threaded
            # invariant, see faults.py), so probing is a pure count check --
            # no per-slot zeroing of pages the caller may never allocate
            return len(self._free_slots) >= k
        taken = []
        while len(taken) < k:
            s = self.take()
            if s is None:
                break
            taken.append(s)
        for s in reversed(taken):
            self.release(s)
        return len(taken) == k

    def release(self, slot: int) -> None:
        """Return a slot to the pool (its bytes are considered garbage)."""
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"slot {slot} out of range")
        if slot in self._free_slots:
            raise ValueError(f"slot {slot} double-released")
        if slot in self.quarantined:
            raise ValueError(f"slot {slot} is quarantined")
        if slot in self._retire_pending:
            self._retire_pending.discard(slot)
            self.quarantined.add(slot)
            return
        self._free_slots.append(slot)

    def quarantine_slot(self, slot: int) -> None:
        """Retire a physical slot so it is never handed out again.

        A free slot retires immediately; a slot hosting a live page keeps
        serving it (in-place repair preserves incoming GPU pointers) and
        retires when the page is next evicted or dropped.  The live entries
        are thereby *relocated*: eviction copies them to the CPU segment
        store, and any later page-in lands on a different physical slot.
        """
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"slot {slot} out of range")
        if slot in self.quarantined:
            return
        try:
            self._free_slots.remove(slot)
        except ValueError:
            self._retire_pending.add(slot)
        else:
            self.quarantined.add(slot)

    def slot_view(self, slot: int) -> np.ndarray:
        """The arena bytes backing ``slot`` (a view, not a copy)."""
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"slot {slot} out of range")
        start = slot * self.page_size
        return self.arena[start : start + self.page_size]
