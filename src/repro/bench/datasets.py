"""Table I: the input dataset sizes used in the experiments.

Regenerates the paper's table alongside the *scaled* sizes this
reproduction actually feeds the applications, plus generator statistics
(record counts) so EXPERIMENTS.md can document the workloads precisely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import ALL_APPS
from repro.bench.config import BenchConfig, PAPER_DATASETS_GB
from repro.bench.reporting import fmt_bytes, render_table

__all__ = ["run_table1", "render_table1", "Table1Row"]


@dataclass
class Table1Row:
    app: str
    paper_gb: tuple[float, float, float, float]
    scaled_bytes: tuple[int, int, int, int]
    records_d1: int


def run_table1(config: BenchConfig | None = None) -> list[Table1Row]:
    config = config or BenchConfig()
    rows = []
    for cls in ALL_APPS:
        app = cls()
        sizes = tuple(
            config.dataset_bytes(app.name, d) for d in (1, 2, 3, 4)
        )
        data = app.generate_input(sizes[0], seed=config.seed)
        records = sum(len(b) for b in app.batches(data, 1 << 20))
        rows.append(
            Table1Row(
                app=app.name,
                paper_gb=PAPER_DATASETS_GB[app.name],
                scaled_bytes=sizes,
                records_d1=records,
            )
        )
    return rows


def render_table1(rows: list[Table1Row], scale: int) -> str:
    body = [
        (
            r.app,
            *(f"{gb:.1f}GB" for gb in r.paper_gb),
            *(fmt_bytes(b) for b in r.scaled_bytes),
            f"{r.records_d1:,}",
        )
        for r in rows
    ]
    table = render_table(
        ["application", "paper#1", "paper#2", "paper#3", "paper#4",
         "ours#1", "ours#2", "ours#3", "ours#4", "records@#1"],
        body,
    )
    return (
        f"Table I: input dataset sizes (paper vs this reproduction, "
        f"scale=1/{scale})\n\n{table}"
    )
