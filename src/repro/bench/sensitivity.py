"""Cost-model sensitivity analysis.

A simulation-based reproduction is only as credible as its constants, so
this driver perturbs the calibrated device parameters -- GPU lock cost,
memory efficiency, PCIe bandwidth, CPU IPC -- by 2x in both directions and
re-runs a representative application slice.  The claim under test is that
the paper's *qualitative* conclusions survive every perturbation:

* the well-behaved applications keep a GPU speedup > 1,
* Word Count stays near/below parity (its collapse is contention-driven,
  not an artefact of one constant),
* SEPO keeps beating the pinned-heap alternative.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.apps import Netflix, PageViewCount, WordCount
from repro.baselines.pinned import PinnedHashTable
from repro.bench.config import BenchConfig
from repro.bench.reporting import render_table
from repro.core.session import GpuSession
from repro.gpusim.device import GTX_780TI, XEON_E5_QUAD
from repro.gpusim.pcie import PCIE_GEN3_X16

__all__ = ["run_sensitivity", "render_sensitivity", "SensitivityRow"]


@dataclass
class SensitivityRow:
    perturbation: str
    pvc_speedup: float
    netflix_speedup: float
    wordcount_speedup: float
    pvc_vs_pinned: float  # pinned_seconds / sepo_seconds for PVC


def _perturbations():
    yield "baseline", GTX_780TI, XEON_E5_QUAD
    yield "gpu lock x2", replace(GTX_780TI, lock_s=GTX_780TI.lock_s * 2), XEON_E5_QUAD
    yield "gpu lock /2", replace(GTX_780TI, lock_s=GTX_780TI.lock_s / 2), XEON_E5_QUAD
    yield (
        "gpu mem-eff x0.5",
        replace(GTX_780TI, mem_efficiency=GTX_780TI.mem_efficiency * 0.5),
        XEON_E5_QUAD,
    )
    yield (
        "gpu mem-eff x2",
        replace(GTX_780TI, mem_efficiency=min(1.0, GTX_780TI.mem_efficiency * 2)),
        XEON_E5_QUAD,
    )
    yield "cpu ipc x2", GTX_780TI, replace(XEON_E5_QUAD, ipc=XEON_E5_QUAD.ipc * 2)
    yield "cpu ipc /2", GTX_780TI, replace(XEON_E5_QUAD, ipc=XEON_E5_QUAD.ipc / 2)


def run_sensitivity(
    config: BenchConfig | None = None, dataset: int = 2
) -> list[SensitivityRow]:
    config = config or BenchConfig()
    apps = {
        "pvc": PageViewCount(),
        "netflix": Netflix(),
        "wordcount": WordCount(),
    }
    data = {
        name: app.generate_input(
            config.dataset_bytes(app.name, dataset), config.seed
        )
        for name, app in apps.items()
    }
    chunk = GpuSession.clamp_chunk(GTX_780TI, config.scale, config.chunk_bytes)
    batches = {
        name: app.batches(data[name], chunk) for name, app in apps.items()
    }

    rows = []
    for label, gpu_dev, cpu_dev in _perturbations():
        speedups = {}
        for name, app in apps.items():
            gpu = app.run_gpu(
                data[name], device=gpu_dev, batches=batches[name],
                **config.gpu_kwargs(),
            )
            cpu = app.run_cpu(
                data[name], device=cpu_dev, batches=batches[name],
                **config.cpu_kwargs(),
            )
            speedups[name] = (cpu.elapsed_seconds, gpu.elapsed_seconds)
        pinned = PinnedHashTable(
            device=gpu_dev,
            n_buckets=config.n_buckets,
            group_size=config.group_size,
            page_size=config.page_size,
            heap_bytes=1 << 28,
            chunk_bytes=chunk,
        ).run(apps["pvc"], data["pvc"])
        rows.append(
            SensitivityRow(
                perturbation=label,
                pvc_speedup=speedups["pvc"][0] / speedups["pvc"][1],
                netflix_speedup=speedups["netflix"][0] / speedups["netflix"][1],
                wordcount_speedup=(
                    speedups["wordcount"][0] / speedups["wordcount"][1]
                ),
                pvc_vs_pinned=pinned.elapsed_seconds / speedups["pvc"][1],
            )
        )
    return rows


def render_sensitivity(rows: list[SensitivityRow]) -> str:
    table = render_table(
        ["perturbation", "PVC", "Netflix", "Word Count", "PVC sepo/pinned"],
        [
            (
                r.perturbation,
                f"{r.pvc_speedup:.2f}x",
                f"{r.netflix_speedup:.2f}x",
                f"{r.wordcount_speedup:.2f}x",
                f"{r.pvc_vs_pinned:.2f}x",
            )
            for r in rows
        ],
    )
    return (
        "Sensitivity: GPU-vs-CPU speedups under 2x parameter perturbations\n"
        "(the paper's qualitative conclusions must survive every row)\n\n"
        + table
    )
