"""Experiment harness: one driver per table/figure of the paper.

Run from the command line::

    python -m repro.bench table1     # Table I   dataset sizes
    python -m repro.bench fig6       # Figure 6  speedups, 7 apps x 4 datasets
    python -m repro.bench table2     # Table II  vs MapCG
    python -m repro.bench fig7       # Figure 7  vs pinned-CPU-memory heap
    python -m repro.bench table3     # Table III vs demand paging
    python -m repro.bench ablations  # threshold / bucket-group / vocabulary
    python -m repro.bench all

``REPRO_SCALE`` (default 1024) selects how hard the paper's GB-scale
experiments are shrunk; see :mod:`repro.bench.config`.
"""

from repro.bench.config import BenchConfig, PAPER_DATASETS_GB
from repro.bench.datasets import render_table1, run_table1
from repro.bench.fig6 import render_fig6, run_fig6
from repro.bench.fig7 import render_fig7, run_fig7
from repro.bench.table2 import render_table2, run_table2
from repro.bench.table3 import render_table3, run_table3

__all__ = [
    "BenchConfig",
    "PAPER_DATASETS_GB",
    "render_fig6",
    "render_fig7",
    "render_table1",
    "render_table2",
    "render_table3",
    "run_fig6",
    "run_fig7",
    "run_table1",
    "run_table2",
    "run_table3",
]
