"""Command-line entry point for the experiment harness."""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.ablations import (
    render_bucket_group_ablation,
    render_threshold_ablation,
    render_vocab_ablation,
    run_bucket_group_ablation,
    run_threshold_ablation,
    run_vocab_ablation,
)
from repro.bench.config import BenchConfig
from repro.bench.datasets import render_table1, run_table1
from repro.bench.fig6 import render_fig6, run_fig6
from repro.bench.fig7 import render_fig7, run_fig7
from repro.bench.table2 import render_table2, run_table2
from repro.bench.table3 import render_table3, run_table3


def _run(name: str, config: BenchConfig) -> tuple[str, object]:
    """Returns (rendered text, raw rows for JSON export)."""
    if name == "table1":
        rows = run_table1(config)
        return render_table1(rows, config.scale), rows
    if name == "fig6":
        rows = run_fig6(config)
        return render_fig6(rows), rows
    if name == "table2":
        rows = run_table2(config)
        return render_table2(rows), rows
    if name == "fig7":
        rows = run_fig7(config)
        return render_fig7(rows), rows
    if name == "table3":
        rows = run_table3(config)
        return render_table3(rows), rows
    if name == "ablations":
        sections = {
            "threshold": run_threshold_ablation(config),
            "bucket_groups": run_bucket_group_ablation(config),
            "vocabulary": run_vocab_ablation(config),
        }
        text = "\n\n".join(
            [
                render_threshold_ablation(sections["threshold"]),
                render_bucket_group_ablation(sections["bucket_groups"]),
                render_vocab_ablation(sections["vocabulary"]),
            ]
        )
        return text, sections
    raise ValueError(f"unknown experiment {name!r}")


EXPERIMENTS = ["table1", "fig6", "table2", "fig7", "table3", "ablations"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment", choices=EXPERIMENTS + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale", type=int, default=None,
        help="override REPRO_SCALE (divide the paper's bytes by this)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write raw results as JSON (one file; experiment name "
             "is appended when running 'all')",
    )
    args = parser.parse_args(argv)

    kwargs = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    config = BenchConfig(**kwargs)

    names = EXPERIMENTS if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        output, rows = _run(name, config)
        wall = time.perf_counter() - start
        print(f"=== {name} (scale=1/{config.scale}, {wall:.1f}s wall) ===\n")
        print(output)
        print()
        if args.json:
            from repro.bench.export import write_json

            path = args.json
            if len(names) > 1:
                stem, dot, ext = path.rpartition(".")
                path = f"{stem}-{name}.{ext}" if dot else f"{path}-{name}"
            write_json(path, name, rows, config.scale, args.seed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
