"""Rendering SEPO run telemetry as a per-iteration timeline.

Makes Figure 5's rhythm visible for a concrete run: how many records each
pass attempted, how many the heap declined, what got evicted, and whether
the pass halted early (basic method) -- the narrative behind every
iteration-count annotation in Figure 6.
"""

from __future__ import annotations

from repro.bench.reporting import fmt_bytes, render_table
from repro.core.sepo import SepoReport

__all__ = ["render_timeline"]


def render_timeline(report: SepoReport, width: int = 40) -> str:
    """A textual per-iteration timeline of a SEPO run."""
    if not report.iteration_log:
        return "(no iterations recorded)"
    peak = max(r.attempted for r in report.iteration_log) or 1
    lines = []
    for rec in report.iteration_log:
        done = round(rec.succeeded / peak * width)
        post = round(rec.postponed / peak * width)
        bar = "#" * done + "~" * post
        flags = []
        if rec.halted_early:
            flags.append("halted@50%")
        if rec.pages_retained:
            flags.append(f"{rec.pages_retained} pages retained")
        note = f"  [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"iter {rec.index:>2} |{bar:<{width + 2}} "
            f"{rec.succeeded:,}/{rec.attempted:,} stored, "
            f"{fmt_bytes(rec.evicted_bytes)} evicted{note}"
        )
    legend = "(# stored   ~ postponed; widths relative to the busiest pass)"
    table = render_table(
        ["iteration", "attempted", "stored", "postponed", "evicted",
         "halted", "retained"],
        [
            (r.index, f"{r.attempted:,}", f"{r.succeeded:,}",
             f"{r.postponed:,}", fmt_bytes(r.evicted_bytes),
             "yes" if r.halted_early else "", r.pages_retained or "")
            for r in report.iteration_log
        ],
    )
    return "\n".join(lines) + "\n" + legend + "\n\n" + table
