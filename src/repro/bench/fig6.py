"""Figure 6: application speedups over the CPU baseline, four datasets each.

For every application and Table-I dataset, runs the GPU implementation
(SEPO hash table; MapReduce apps go through the runtime semantics, which are
identical at this level) and the multi-threaded CPU baseline (Phoenix++ for
the MapReduce apps -- same substrate), and reports
``speedup = cpu_seconds / gpu_seconds`` with the SEPO iteration count
annotated on each bar, exactly as the paper's figure does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import ALL_APPS
from repro.apps.base import Application
from repro.bench.config import BenchConfig
from repro.bench.reporting import fmt_bytes, fmt_seconds, render_bars, render_table
from repro.core.session import GpuSession
from repro.gpusim.device import GTX_780TI

__all__ = ["Fig6Cell", "run_fig6", "render_fig6"]


@dataclass
class Fig6Cell:
    """One bar of Figure 6."""

    app: str
    dataset: int
    input_bytes: int
    gpu_seconds: float
    cpu_seconds: float
    iterations: int
    table_bytes: int
    heap_bytes: int

    @property
    def speedup(self) -> float:
        return self.cpu_seconds / self.gpu_seconds

    @property
    def table_over_memory(self) -> float:
        return self.table_bytes / self.heap_bytes if self.heap_bytes else 0.0


def run_app_dataset(
    app: Application, dataset: int, config: BenchConfig
) -> Fig6Cell:
    """GPU + CPU runs for one bar; input parsed once and reused."""
    size = config.dataset_bytes(app.name, dataset)
    data = app.generate_input(size, seed=config.seed)
    chunk = GpuSession.clamp_chunk(GTX_780TI, config.scale, config.chunk_bytes)
    batches = app.batches(data, chunk)
    gpu = app.run_gpu(data, batches=batches, **config.gpu_kwargs())
    cpu = app.run_cpu(data, batches=batches, **config.cpu_kwargs())
    return Fig6Cell(
        app=app.name,
        dataset=dataset,
        input_bytes=len(data),
        gpu_seconds=gpu.elapsed_seconds,
        cpu_seconds=cpu.elapsed_seconds,
        iterations=gpu.iterations,
        table_bytes=gpu.report.table_bytes,
        heap_bytes=gpu.table.heap.pool.n_slots * gpu.table.heap.page_size,
    )


def run_fig6(
    config: BenchConfig | None = None,
    apps: list[type] | None = None,
    datasets: tuple[int, ...] = (1, 2, 3, 4),
) -> list[Fig6Cell]:
    config = config or BenchConfig()
    cells = []
    for cls in apps or ALL_APPS:
        app = cls()
        for d in datasets:
            cells.append(run_app_dataset(app, d, config))
    return cells


def render_fig6(cells: list[Fig6Cell]) -> str:
    """The figure as grouped ASCII bars plus the underlying numbers."""
    labels = [f"{c.app} #{c.dataset}" for c in cells]
    bars = render_bars(
        labels,
        [c.speedup for c in cells],
        annotations=[f"{c.iterations} iter" for c in cells],
    )
    rows = [
        (
            c.app,
            c.dataset,
            fmt_bytes(c.input_bytes),
            fmt_seconds(c.gpu_seconds),
            fmt_seconds(c.cpu_seconds),
            f"{c.speedup:.2f}x",
            c.iterations,
            f"{c.table_over_memory:.2f}",
        )
        for c in cells
    ]
    table = render_table(
        ["application", "ds", "input", "gpu", "cpu", "speedup",
         "iterations", "table/mem"],
        rows,
    )
    mean = sum(c.speedup for c in cells) / len(cells) if cells else 0.0
    return (
        "Figure 6: speedup over CPU multi-threaded implementation\n"
        "(bar annotations: SEPO iterations needed)\n\n"
        f"{bars}\n\nmean speedup: {mean:.2f}x\n\n{table}"
    )
