"""Figure 7: SEPO vs the pinned-CPU-memory hash table, largest dataset.

For each application's dataset #4, three runs: the CPU baseline, the SEPO
table, and the pinned-heap variant.  The figure reports both GPU variants'
speedups relative to the CPU baseline.  The paper's headline observations,
checked by the benchmark's assertions:

* SEPO significantly outperforms the pinned heap for every application,
  despite needing multiple iterations;
* the pinned variant is *slower than the CPU baseline* for a majority of
  the applications (4 of 7 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import ALL_APPS
from repro.baselines.pinned import PinnedHashTable
from repro.bench.config import BenchConfig
from repro.bench.reporting import fmt_seconds, render_bars, render_table
from repro.core.session import GpuSession
from repro.gpusim.device import GTX_780TI

__all__ = ["run_fig7", "render_fig7", "Fig7Row"]


@dataclass
class Fig7Row:
    app: str
    cpu_seconds: float
    sepo_seconds: float
    pinned_seconds: float
    sepo_iterations: int

    @property
    def sepo_speedup(self) -> float:
        return self.cpu_seconds / self.sepo_seconds

    @property
    def pinned_speedup(self) -> float:
        return self.cpu_seconds / self.pinned_seconds


def run_fig7(
    config: BenchConfig | None = None, dataset: int = 4
) -> list[Fig7Row]:
    config = config or BenchConfig()
    rows = []
    for cls in ALL_APPS:
        app = cls()
        data = app.generate_input(
            config.dataset_bytes(app.name, dataset), config.seed
        )
        chunk = GpuSession.clamp_chunk(GTX_780TI, config.scale, config.chunk_bytes)
        batches = app.batches(data, chunk)
        cpu = app.run_cpu(data, batches=batches, **config.cpu_kwargs())
        sepo = app.run_gpu(data, batches=batches, **config.gpu_kwargs())
        pinned = PinnedHashTable(
            n_buckets=config.n_buckets,
            group_size=config.group_size,
            page_size=config.page_size,
            heap_bytes=1 << 28,
            chunk_bytes=chunk,
        ).run(app, data)
        rows.append(
            Fig7Row(
                app=app.name,
                cpu_seconds=cpu.elapsed_seconds,
                sepo_seconds=sepo.elapsed_seconds,
                pinned_seconds=pinned.elapsed_seconds,
                sepo_iterations=sepo.iterations,
            )
        )
    return rows


def render_fig7(rows: list[Fig7Row]) -> str:
    labels, values, notes = [], [], []
    for r in rows:
        labels += [f"{r.app} (SEPO)", f"{r.app} (pinned)"]
        values += [r.sepo_speedup, r.pinned_speedup]
        notes += [f"{r.sepo_iterations} iter", "1 pass"]
    bars = render_bars(labels, values, annotations=notes)
    body = [
        (
            r.app,
            fmt_seconds(r.cpu_seconds),
            fmt_seconds(r.sepo_seconds),
            fmt_seconds(r.pinned_seconds),
            f"{r.sepo_speedup:.2f}x",
            f"{r.pinned_speedup:.2f}x",
        )
        for r in rows
    ]
    table = render_table(
        ["application", "cpu", "sepo", "pinned", "sepo-speedup",
         "pinned-speedup"],
        body,
    )
    slower = sum(1 for r in rows if r.pinned_speedup < 1.0)
    return (
        "Figure 7: speedups vs CPU baseline, dataset #4 "
        "(SEPO table vs pinned-CPU-memory heap)\n\n"
        f"{bars}\n\npinned slower than the CPU baseline for {slower} of "
        f"{len(rows)} applications (paper: 4 of 7)\n\n{table}"
    )
