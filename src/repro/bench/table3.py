"""Table III: demand-paging lower bound vs the SEPO hash table, for PVC.

Methodology, following Section VI-D:

1. PVC runs once with an unconstrained heap, recording its hash-table
   access pattern through :class:`~repro.baselines.trace.AccessTrace`.
2. The trace replays through an LRU page cache for each assumed GPU memory
   size; replacement count x page size gives the *lower bound* transfer
   time over PCIe.
3. The last column re-runs PVC with a SEPO table at each assumed memory
   size and reports its *total* execution time.

The paper's memory rows span table-size x (1200/1200 ... 400/1200); we keep
those ratios against our scaled table.  The paper's absolute page sizes
(1 MB / 128 KB / 4 KB) are divided by ``PAGE_SCALE`` so that page : table
proportions remain meaningful on a scaled-down table; the qualitative
conclusions (column ordering, and paging losing to SEPO once the table is
~1.5x memory) are scale-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.pvc import PageViewCount
from repro.baselines.paging import DemandPagingModel
from repro.baselines.trace import AccessTrace
from repro.bench.config import BenchConfig
from repro.bench.reporting import fmt_bytes, fmt_seconds, render_table
from repro.gpusim.device import GTX_780TI

__all__ = ["run_table3", "render_table3", "Table3Row", "PAGE_SCALE"]

#: Divisor applied to the paper's absolute page sizes (1MB/128KB/4KB).
PAGE_SCALE = 16
PAPER_PAGE_SIZES = (1 << 20, 128 << 10, 4 << 10)
#: memory/table ratios of the paper's rows (table reaches 1.2 GB there)
MEMORY_RATIOS = tuple(m / 1200 for m in range(1200, 399, -100))


@dataclass
class Table3Row:
    memory_bytes: int
    #: transfer seconds per page size, in PAPER_PAGE_SIZES order
    paging_seconds: tuple[float, float, float]
    sepo_seconds: float
    sepo_iterations: int


def _scale_for_heap(target_heap: int, n_buckets: int) -> int:
    """Session scale whose layout leaves ~``target_heap`` for the table."""
    fixed = n_buckets * 20 + 4096  # bucket array + bitmap ballpark
    capacity = int((target_heap + fixed) / (1 - 2 / 16))  # staging = cap/8
    return max(1, GTX_780TI.mem_capacity // capacity)


def run_table3(
    config: BenchConfig | None = None,
    input_bytes: int | None = None,
) -> list[Table3Row]:
    config = config or BenchConfig()
    app = PageViewCount()
    if input_bytes is None:
        # Sized so the unconstrained table lands near 1.2 GB / scale,
        # mirroring "a hash table that reaches 1.2 GB in size".
        input_bytes = int(1.75 * (1 << 30) / config.scale)
    data = app.generate_input(input_bytes, seed=config.seed)

    # Step 1: unconstrained run (everything fits) with the trace attached.
    trace = AccessTrace()
    n_buckets = config.n_buckets
    unconstrained = app.run_gpu(
        data,
        scale=_scale_for_heap(4 * input_bytes, n_buckets),
        n_buckets=n_buckets,
        group_size=config.group_size,
        page_size=config.page_size,
        trace=trace,
    )
    assert unconstrained.iterations == 1, "trace run must not page/postpone"
    table_bytes = unconstrained.report.table_bytes

    model = DemandPagingModel(trace)
    page_sizes = [max(64, p // PAGE_SCALE) for p in PAPER_PAGE_SIZES]

    # Memory rows are ratios of the table footprint *at the coarsest page
    # grain*, so the first row (ratio 1.0) genuinely holds every page and
    # reports 0.00s in all columns, as in the paper.
    base_bytes = max(table_bytes, trace.footprint_bytes(page_sizes[0]))

    rows = []
    for ratio in MEMORY_RATIOS:
        memory = int(base_bytes * ratio)
        paging = tuple(
            model.estimate(memory, ps).transfer_seconds for ps in page_sizes
        )
        sepo = app.run_gpu(
            data,
            scale=_scale_for_heap(memory, n_buckets),
            n_buckets=n_buckets,
            group_size=config.group_size,
            page_size=config.page_size,
        )
        rows.append(
            Table3Row(
                memory_bytes=memory,
                paging_seconds=paging,
                sepo_seconds=sepo.elapsed_seconds,
                sepo_iterations=sepo.iterations,
            )
        )
    return rows


def render_table3(rows: list[Table3Row]) -> str:
    page_labels = [
        fmt_bytes(max(64, p // PAGE_SCALE)) for p in PAPER_PAGE_SIZES
    ]
    body = [
        (
            fmt_bytes(r.memory_bytes),
            *(fmt_seconds(t) for t in r.paging_seconds),
            fmt_seconds(r.sepo_seconds),
            r.sepo_iterations,
        )
        for r in rows
    ]
    table = render_table(
        ["assumed GPU memory",
         *(f"paging xfer ({p} pages)" for p in page_labels),
         "SEPO total", "SEPO iters"],
        body,
    )
    return (
        "Table III: demand-paging lower-bound transfer time vs SEPO total\n"
        "(PVC; page sizes are the paper's 1MB/128KB/4KB divided by "
        f"{PAGE_SCALE}; memory rows keep the paper's memory:table ratios)\n\n"
        + table
    )
