"""Table II: speedups of our MapReduce runtime over MapCG.

As in Section VI-C, only the smallest dataset is used -- MapCG hard-fails on
anything whose table outgrows GPU memory -- so SEPO is effectively inactive
and the comparison isolates the basic table design (allocation +
synchronization).  The driver also demonstrates the failure itself: it runs
MapCG on dataset #2 and reports the :class:`GpuOutOfMemory`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import GeoLocation, PatentCitation, WordCount
from repro.bench.config import BenchConfig
from repro.bench.reporting import fmt_seconds, render_table
from repro.mapreduce import GpuOutOfMemory, MapCGRuntime, MapReduceRuntime

__all__ = ["run_table2", "render_table2", "Table2Row"]

#: Paper's Table II values for side-by-side reporting.
PAPER_TABLE2 = {
    "Word Count": 1.05,
    "Patent Citation": 2.42,
    "Geo Location": 2.55,
}

MR_APPS = [WordCount, PatentCitation, GeoLocation]


@dataclass
class Table2Row:
    app: str
    ours_seconds: float
    mapcg_seconds: float
    paper_speedup: float
    mapcg_oom_on_large: bool

    @property
    def speedup(self) -> float:
        return self.mapcg_seconds / self.ours_seconds


def run_table2(config: BenchConfig | None = None) -> list[Table2Row]:
    config = config or BenchConfig()
    kwargs = dict(
        scale=config.scale,
        n_buckets=config.n_buckets,
        group_size=config.group_size,
        page_size=config.page_size,
    )
    rows = []
    for cls in MR_APPS:
        app = cls()
        job = app.make_job()
        small = app.generate_input(config.dataset_bytes(app.name, 1), config.seed)
        ours = MapReduceRuntime(job, **kwargs).run(small)
        mapcg = MapCGRuntime(job, **kwargs).run(small)
        # Section VI-C: MapCG cannot process the larger datasets at all.
        large = app.generate_input(config.dataset_bytes(app.name, 4), config.seed)
        try:
            MapCGRuntime(job, **kwargs).run(large)
            oom = False
        except GpuOutOfMemory:
            oom = True
        rows.append(
            Table2Row(
                app=app.name,
                ours_seconds=ours.elapsed_seconds,
                mapcg_seconds=mapcg.elapsed_seconds,
                paper_speedup=PAPER_TABLE2[app.name],
                mapcg_oom_on_large=oom,
            )
        )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    body = [
        (
            r.app,
            fmt_seconds(r.ours_seconds),
            fmt_seconds(r.mapcg_seconds),
            f"{r.speedup:.2f}x",
            f"{r.paper_speedup:.2f}x",
            "fails (OOM)" if r.mapcg_oom_on_large else "runs",
        )
        for r in rows
    ]
    table = render_table(
        ["application", "ours", "MapCG", "speedup", "paper", "MapCG@dataset#4"],
        body,
    )
    return "Table II: speedups over MapCG (smallest datasets)\n\n" + table
