"""Ablations for the design choices the paper calls out.

* **Halt threshold** (Section IV-C, footnote 5): the basic method stops the
  computation when 50% of bucket groups fail to allocate.  Sweeping the
  threshold shows the trade-off: halting early wastes heap capacity (more
  iterations), halting late makes late-pass kernels churn through postponed
  records.
* **Bucket-group size** (Section IV-A): fewer, larger groups reduce
  fragmentation but concentrate allocator contention; the library exposes
  the knob "to balance this trade-off".
* **Word Count vocabulary** (Section VI-B): "when we artificially increased
  the number of distinct keys in the input dataset of Word Count ...
  performance quickly improved".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.pvc import PageViewCount
from repro.apps.wordcount import WordCount
from repro.bench.config import BenchConfig
from repro.bench.reporting import fmt_bytes, fmt_seconds, render_table
from repro.core.organizations import BasicOrganization
from repro.core.records import RecordBatch
from repro.core.session import GpuSession
from repro.gpusim.device import GTX_780TI

__all__ = [
    "run_threshold_ablation",
    "run_bucket_group_ablation",
    "run_vocab_ablation",
    "render_threshold_ablation",
    "render_bucket_group_ablation",
    "render_vocab_ablation",
]


# ----------------------------------------------------------------------
# halt threshold (basic method)
# ----------------------------------------------------------------------
@dataclass
class ThresholdPoint:
    threshold: float
    seconds: float
    iterations: int


class _BasicPvc(PageViewCount):
    """PVC storing raw <url, 1> pairs with the basic method (no combining):
    the workload shape the paper's basic-method policy is designed for."""

    name = "PVC (basic method)"
    organization = "basic"

    def __init__(self, halt_threshold: float = 0.5, **kwargs):
        super().__init__(**kwargs)
        self.halt_threshold = halt_threshold

    def make_organization(self):
        return BasicOrganization(halt_threshold=self.halt_threshold)

    def parse_chunk(self, chunk: bytes) -> RecordBatch:
        batch = super().parse_chunk(chunk)
        n = len(batch)
        return RecordBatch(
            keys=batch.keys,
            key_lens=batch.key_lens,
            values=np.ones((n, 1), dtype=np.uint8),
            val_lens=np.ones(n, dtype=np.int32),
        )


def run_threshold_ablation(
    config: BenchConfig | None = None,
    thresholds=(0.1, 0.25, 0.5, 0.75, 0.95),
    dataset: int = 3,
) -> list[ThresholdPoint]:
    config = config or BenchConfig()
    size = config.dataset_bytes("Page View Count", dataset)
    points = []
    for th in thresholds:
        app = _BasicPvc(halt_threshold=th)
        data = app.generate_input(size, seed=config.seed)
        out = app.run_gpu(data, **config.gpu_kwargs())
        points.append(
            ThresholdPoint(
                threshold=th,
                seconds=out.elapsed_seconds,
                iterations=out.iterations,
            )
        )
    return points


def render_threshold_ablation(points: list[ThresholdPoint]) -> str:
    table = render_table(
        ["halt threshold", "time", "iterations"],
        [(f"{p.threshold:.0%}", fmt_seconds(p.seconds), p.iterations)
         for p in points],
    )
    return (
        "Ablation: basic-method halt threshold (Section IV-C footnote 5; "
        "the paper uses 50%)\n\n" + table
    )


# ----------------------------------------------------------------------
# bucket-group size
# ----------------------------------------------------------------------
@dataclass
class GroupSizePoint:
    group_size: int
    n_groups: int
    seconds: float
    fragmented_bytes: int
    iterations: int


def run_bucket_group_ablation(
    config: BenchConfig | None = None,
    group_sizes=(16, 64, 256, 1024, 4096),
    dataset: int = 3,
) -> list[GroupSizePoint]:
    config = config or BenchConfig()
    app = PageViewCount()
    data = app.generate_input(
        config.dataset_bytes(app.name, dataset), seed=config.seed
    )
    chunk = GpuSession.clamp_chunk(GTX_780TI, config.scale, config.chunk_bytes)
    batches = app.batches(data, chunk)
    points = []
    for gs in group_sizes:
        out = app.run_gpu(
            data,
            batches=batches,
            scale=config.scale,
            n_buckets=config.n_buckets,
            group_size=gs,
            page_size=config.page_size,
        )
        points.append(
            GroupSizePoint(
                group_size=gs,
                n_groups=out.table.buckets.n_groups,
                seconds=out.elapsed_seconds,
                fragmented_bytes=out.table.heap.fragmented_bytes,
                iterations=out.iterations,
            )
        )
    return points


def render_bucket_group_ablation(points: list[GroupSizePoint]) -> str:
    table = render_table(
        ["group size", "groups", "time", "fragmentation", "iterations"],
        [
            (p.group_size, p.n_groups, fmt_seconds(p.seconds),
             fmt_bytes(p.fragmented_bytes), p.iterations)
            for p in points
        ],
    )
    return (
        "Ablation: bucket-group size (Section IV-A trade-off: allocator "
        "contention vs fragmentation)\n\n" + table
    )


# ----------------------------------------------------------------------
# Word Count vocabulary
# ----------------------------------------------------------------------
@dataclass
class VocabPoint:
    vocab_size: int
    gpu_seconds: float
    cpu_seconds: float

    @property
    def speedup(self) -> float:
        return self.cpu_seconds / self.gpu_seconds


def run_vocab_ablation(
    config: BenchConfig | None = None,
    vocab_sizes=(500, 3500, 20_000, 100_000),
    dataset: int = 3,
) -> list[VocabPoint]:
    config = config or BenchConfig()
    points = []
    for v in vocab_sizes:
        app = WordCount(vocab_size=v)
        data = app.generate_input(
            config.dataset_bytes(app.name, dataset), seed=config.seed
        )
        chunk = GpuSession.clamp_chunk(
            GTX_780TI, config.scale, config.chunk_bytes
        )
        batches = app.batches(data, chunk)
        gpu = app.run_gpu(data, batches=batches, **config.gpu_kwargs())
        cpu = app.run_cpu(data, batches=batches, **config.cpu_kwargs())
        points.append(
            VocabPoint(
                vocab_size=v,
                gpu_seconds=gpu.elapsed_seconds,
                cpu_seconds=cpu.elapsed_seconds,
            )
        )
    return points


def render_vocab_ablation(points: list[VocabPoint]) -> str:
    table = render_table(
        ["vocabulary", "gpu", "cpu", "speedup"],
        [
            (f"{p.vocab_size:,}", fmt_seconds(p.gpu_seconds),
             fmt_seconds(p.cpu_seconds), f"{p.speedup:.2f}x")
            for p in points
        ],
    )
    return (
        "Ablation: Word Count distinct-key count (Section VI-B: more "
        "distinct keys -> less lock contention -> GPU recovers)\n\n" + table
    )
