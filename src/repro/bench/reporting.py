"""Plain-text rendering of tables and bar charts for experiment reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_bars", "fmt_seconds", "fmt_bytes"]


def fmt_seconds(s: float) -> str:
    if s == 0:
        return "0.00s"
    if s < 1e-3:
        return f"{s * 1e6:.1f}us"
    if s < 1:
        return f"{s * 1e3:.2f}ms"
    return f"{s:.2f}s"


def fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024 or unit == "GB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    raise AssertionError("unreachable")


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with right-aligned numeric-looking columns."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def is_numeric(col: int) -> bool:
        body = [r[col] for r in cells[1:]]
        return bool(body) and all(
            c.replace(".", "").replace("-", "").replace("x", "")
            .replace("s", "").replace("u", "").replace("m", "")
            .replace("%", "").replace("K", "").replace("M", "")
            .replace("G", "").replace("B", "").isdigit() or c == ""
            for c in body
        )

    aligns = [is_numeric(i) for i in range(len(headers))]

    def fmt_row(row: list[str]) -> str:
        return "  ".join(
            c.rjust(w) if aligns[i] else c.ljust(w)
            for i, (c, w) in enumerate(zip(row, widths))
        ).rstrip()

    sep = "  ".join("-" * w for w in widths)
    return "\n".join([fmt_row(cells[0]), sep] + [fmt_row(r) for r in cells[1:]])


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    annotations: Sequence[str] | None = None,
    width: int = 42,
    unit: str = "x",
) -> str:
    """Horizontal ASCII bar chart (Figure 6 / Figure 7 style)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if annotations is not None and len(annotations) != len(values):
        raise ValueError("annotations must align with values")
    vmax = max(values, default=0.0)
    if vmax <= 0:
        vmax = 1.0
    label_w = max((len(l) for l in labels), default=0)
    lines = []
    for i, (label, value) in enumerate(zip(labels, values)):
        bar = "#" * max(1 if value > 0 else 0, round(value / vmax * width))
        note = f"  [{annotations[i]}]" if annotations is not None else ""
        lines.append(f"{label.rjust(label_w)} |{bar} {value:.2f}{unit}{note}")
    return "\n".join(lines)
