"""Experiment configuration and scaling.

The paper's testbed has 3 GiB of GPU memory and processes 0.2-8 GB inputs
(Table I).  We shrink *everything bytes-shaped* by one common ``scale``
factor -- device memory, dataset sizes, bucket count -- which preserves the
table-size : device-memory ratios that drive SEPO iteration counts, while
the throughput-shaped device parameters stay calibrated to the real
hardware, so speedup ratios are preserved.

``REPRO_SCALE`` in the environment overrides the default (e.g. set
``REPRO_SCALE=2048`` for quicker, coarser runs, or ``256`` for bigger ones).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["BenchConfig", "PAPER_DATASETS_GB", "DEFAULT_SCALE"]

GB = 1_000_000_000

#: Table I of the paper: the four input dataset sizes per application.
PAPER_DATASETS_GB: dict[str, tuple[float, float, float, float]] = {
    "Inverted Index": (2.0, 3.0, 4.0, 5.0),
    "Page View Count": (0.6, 2.2, 3.8, 5.8),
    "DNA Assembly": (2.0, 4.0, 6.0, 8.0),
    "Netflix": (1.6, 3.2, 4.8, 6.4),
    "Word Count": (0.2, 2.0, 3.0, 4.0),
    "Patent Citation": (0.2, 2.0, 3.4, 4.8),
    "Geo Location": (0.2, 1.8, 3.2, 5.0),
}

DEFAULT_SCALE = 1024


def _env_scale() -> int:
    return int(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))


@dataclass
class BenchConfig:
    """Shared knobs for every experiment driver."""

    scale: int = field(default_factory=_env_scale)
    seed: int = 0
    group_size: int = 256
    page_size: int = 4 << 10
    chunk_bytes: int = 1 << 20  # clamped per session to the scaled device
    #: bucket count at scale 1 (the paper allocates the array generously)
    n_buckets_unscaled: int = 1 << 23

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1: {self.scale}")

    @property
    def n_buckets(self) -> int:
        return max(1 << 10, self.n_buckets_unscaled // self.scale)

    def dataset_bytes(self, app_name: str, dataset: int) -> int:
        """Scaled size of Table I's dataset #``dataset`` (1-based)."""
        sizes = PAPER_DATASETS_GB[app_name]
        if not 1 <= dataset <= len(sizes):
            raise ValueError(f"dataset index {dataset} out of range 1..4")
        return int(sizes[dataset - 1] * GB / self.scale)

    def gpu_kwargs(self) -> dict:
        return dict(
            scale=self.scale,
            n_buckets=self.n_buckets,
            group_size=self.group_size,
            page_size=self.page_size,
            chunk_bytes=self.chunk_bytes,
        )

    def cpu_kwargs(self) -> dict:
        return dict(n_buckets=self.n_buckets, group_size=self.group_size)
