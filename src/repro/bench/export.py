"""Machine-readable export of experiment results.

Every driver's dataclass rows serialize to JSON (for plotting or regression
tracking across runs); ``python -m repro.bench fig6 --json out.json`` writes
alongside the rendered text.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

__all__ = ["rows_to_json", "write_json"]


def _encode(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = dataclasses.asdict(obj)
        # Include computed properties (speedup etc.) for convenience.
        for name in dir(type(obj)):
            attr = getattr(type(obj), name, None)
            if isinstance(attr, property):
                try:
                    out[name] = getattr(obj, name)
                except Exception:  # pragma: no cover - defensive
                    pass
        return out
    if isinstance(obj, (list, tuple)):
        return [_encode(o) for o in obj]
    if isinstance(obj, dict):
        return {str(k): _encode(v) for k, v in obj.items()}
    if isinstance(obj, bytes):
        return obj.decode("utf-8", errors="replace")
    return obj


def rows_to_json(experiment: str, rows: Any, scale: int, seed: int) -> str:
    """Serialize one experiment's result rows to a JSON document."""
    doc = {
        "experiment": experiment,
        "scale": scale,
        "seed": seed,
        "rows": _encode(rows),
    }
    return json.dumps(doc, indent=2, default=str)


def write_json(path: str, experiment: str, rows: Any, scale: int,
               seed: int) -> None:
    with open(path, "w") as fh:
        fh.write(rows_to_json(experiment, rows, scale, seed))
        fh.write("\n")
