"""Sharded multi-device SEPO execution (Section VII outlook).

The paper's single-device SEPO loop generalizes to N GPUs by hash
partitioning the key space: each shard runs the unmodified Figure-5
iteration over its slice of the input on its own simulated device, heap,
and PCIe link, and the host overlaps the shards' transfer/compute
schedules.  This package provides:

* :class:`ShardMap` -- stateless key -> shard assignment (high hash bits).
* :class:`ShardChannel` / :class:`TransferSchedule` -- per-shard clocks
  and the aggregate makespan + overlap accounting.
* :class:`ShardedExecutor` -- the N-device round-robin driver with an
  unsharded-identical ``result()``/``lookup()`` surface.
* :class:`ShardRouter` -- a batching front door that coalesces many
  small client streams into SEPO-sized per-shard chunks under a
  backpressure bound.
"""

from repro.shard.executor import ShardedExecutor, ShardReport
from repro.shard.router import ShardRouter, Ticket
from repro.shard.shardmap import ShardMap
from repro.shard.transfer import ShardChannel, TransferSchedule

__all__ = [
    "ShardChannel",
    "ShardMap",
    "ShardReport",
    "ShardRouter",
    "ShardedExecutor",
    "Ticket",
    "TransferSchedule",
]
