"""Per-shard device channels and the multi-channel transfer schedule.

Each simulated GPU owns an independent PCIe link, clock, and BigKernel
double-buffer: a :class:`ShardChannel`.  The :class:`TransferSchedule`
is the host's aggregate view over those channels.  Two distinct overlap
effects are accounted:

* **intra-shard** (double buffering): within one shard, chunk *i+1*'s
  upload hides behind chunk *i*'s device pass; the channel's
  :class:`~repro.bigkernel.pipeline.BigKernelPipeline` charges only the
  exposed remainder, and the bus keeps full-wire vs hidden counters.
* **inter-shard** (independent links): shard *i*'s upload and shard
  *j*'s device pass proceed on different clocks entirely, so the
  aggregate *makespan* is the **max** of the per-shard clocks, not the
  sum -- the sum (:attr:`TransferSchedule.busy_seconds`) is what the
  same work would cost serialized through one device.
"""

from __future__ import annotations

from repro.bigkernel.pipeline import BigKernelPipeline
from repro.gpusim.clock import CostLedger
from repro.gpusim.pcie import PCIE_GEN3_X16, PCIeBus, PCIeLinkSpec

__all__ = ["ShardChannel", "TransferSchedule"]


class ShardChannel:
    """One shard's private clock + PCIe link + input pipeline."""

    def __init__(self, shard: int, spec: PCIeLinkSpec = PCIE_GEN3_X16):
        self.shard = shard
        self.ledger = CostLedger()
        self.bus = PCIeBus(self.ledger, spec)
        self.pipeline = BigKernelPipeline(self.bus)

    @property
    def elapsed(self) -> float:
        """This shard's simulated clock (all categories)."""
        return self.ledger.elapsed


class TransferSchedule:
    """Aggregate accounting over N independent shard channels."""

    def __init__(self, channels: list[ShardChannel]):
        if not channels:
            raise ValueError("a transfer schedule needs at least one channel")
        self.channels = channels

    @property
    def makespan_seconds(self) -> float:
        """Wall time of the sharded run: the slowest shard's clock."""
        return max(ch.elapsed for ch in self.channels)

    @property
    def busy_seconds(self) -> float:
        """Sum of per-shard clocks = the serialized single-device cost."""
        return sum(ch.elapsed for ch in self.channels)

    @property
    def wire_seconds(self) -> float:
        """Full wire time of every pipelined chunk upload, all channels."""
        return sum(ch.bus.overlap_wire_seconds for ch in self.channels)

    @property
    def hidden_seconds(self) -> float:
        """Wire time hidden behind compute by double buffering."""
        return sum(ch.bus.overlap_hidden_seconds for ch in self.channels)

    @property
    def overlap_efficiency(self) -> float:
        """Hidden / full wire time of chunk uploads, in [0, 1].

        0 means every byte's transfer time was exposed (no compute to
        hide behind -- e.g. a single chunk per pass); 1 means uploads
        were entirely hidden.
        """
        wire = self.wire_seconds
        return self.hidden_seconds / wire if wire else 0.0

    @property
    def parallel_speedup(self) -> float:
        """busy / makespan: how much the independent channels bought."""
        makespan = self.makespan_seconds
        return self.busy_seconds / makespan if makespan else 1.0

    def report(self) -> dict:
        """Flat summary for benchmarks and telemetry."""
        return {
            "n_shards": len(self.channels),
            "makespan_seconds": self.makespan_seconds,
            "busy_seconds": self.busy_seconds,
            "per_shard_seconds": [ch.elapsed for ch in self.channels],
            "wire_seconds": self.wire_seconds,
            "hidden_seconds": self.hidden_seconds,
            "overlap_efficiency": self.overlap_efficiency,
            "parallel_speedup": self.parallel_speedup,
            "bytes_moved": sum(ch.bus.bytes_moved for ch in self.channels),
        }
