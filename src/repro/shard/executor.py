"""The sharded SEPO executor: N simulated GPUs, one key-space shard each.

Each shard is a complete single-device stack -- its own
:class:`~repro.memalloc.heap.GpuHeap`/page pool, hash table,
:class:`~repro.core.sepo.SepoDriver`, and a private
:class:`~repro.shard.transfer.ShardChannel` (clock + PCIe link +
double-buffered input pipeline).  The executor partitions every input
batch by key-space hash (:func:`repro.bigkernel.partitioner.
partition_by_shard`), then drives the shards **round-robin**: one SEPO
pass per shard per round, each pass streaming that shard's chunks over
its own link while the other shards' clocks advance independently.  The
aggregate wall time is therefore the *makespan* -- the slowest shard's
clock -- reported by the :class:`~repro.shard.transfer.TransferSchedule`
together with the intra-shard transfer/compute overlap efficiency.

Correctness bar: because shards partition the key space, the sharded
table's merged :meth:`result` and its cross-shard :meth:`lookup` answers
are identical to an unsharded run of the same stream (same organization,
generous heap), and :meth:`check_shards` runs the per-shard structural
sanitizer plus the cross-shard placement invariant (no key resident in
two shards, every key in its hash-assigned shard).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.bigkernel.partitioner import partition_by_shard
from repro.core.hashing import fnv1a_batch
from repro.core.hashtable import GpuHashTable
from repro.core.lookup import LookupDriver
from repro.core.mutations import MutationBatch
from repro.core.records import RecordBatch, pack_byte_rows
from repro.core.sepo import NoProgressError, SepoDriver, SepoReport
from repro.gpusim.device import GTX_780TI, DeviceSpec
from repro.gpusim.kernel import KernelModel
from repro.gpusim.pcie import PCIE_GEN3_X16, PCIeLinkSpec
from repro.memalloc.heap import GpuHeap
from repro.shard.shardmap import ShardMap
from repro.shard.transfer import ShardChannel, TransferSchedule

__all__ = ["ShardReport", "ShardedExecutor"]


@dataclass
class ShardReport:
    """Result of one sharded run."""

    total_records: int
    #: per-shard SEPO reports, indexed by shard id
    shard_reports: list[SepoReport]
    #: aggregate clock/overlap accounting (see TransferSchedule.report)
    schedule: dict = field(default_factory=dict)

    @property
    def makespan_seconds(self) -> float:
        return self.schedule["makespan_seconds"]

    @property
    def records_per_second(self) -> float:
        """Aggregate simulated throughput: records / makespan."""
        makespan = self.makespan_seconds
        return self.total_records / makespan if makespan else 0.0


class ShardedExecutor:
    """N-shard SEPO execution with independent per-shard channels."""

    def __init__(
        self,
        n_shards: int,
        org_factory: Callable[[], Any],
        *,
        n_buckets: int,
        heap_bytes: int,
        page_size: int,
        group_size: int = 64,
        sanitize: str | None = None,
        max_iterations: int = 1000,
        device: DeviceSpec = GTX_780TI,
        link: PCIeLinkSpec = PCIE_GEN3_X16,
        lookup_impl: str = "vectorized",
    ):
        self.shard_map = ShardMap(n_shards)
        self.lookup_impl = lookup_impl
        self.channels: list[ShardChannel] = []
        self.tables: list[GpuHashTable] = []
        self.kernels: list[KernelModel] = []
        self.drivers: list[SepoDriver] = []
        for s in range(n_shards):
            channel = ShardChannel(s, link)
            heap = GpuHeap(heap_bytes, page_size)
            table = GpuHashTable(
                n_buckets=n_buckets,
                organization=org_factory(),
                heap=heap,
                group_size=group_size,
                ledger=channel.ledger,
                sanitize=sanitize,
            )
            kernel = KernelModel(device, channel.ledger)
            driver = SepoDriver(
                table,
                kernel,
                channel.bus,
                pipeline=channel.pipeline,
                max_iterations=max_iterations,
            )
            self.channels.append(channel)
            self.tables.append(table)
            self.kernels.append(kernel)
            self.drivers.append(driver)
        self.schedule = TransferSchedule(self.channels)
        self.total_records = 0

    @property
    def n_shards(self) -> int:
        return self.shard_map.n_shards

    # ------------------------------------------------------------------
    def partition(
        self, batches: Sequence[RecordBatch]
    ) -> tuple[list[list[RecordBatch]], list[list[tuple[int, RecordBatch, np.ndarray]]]]:
        """Split every batch by shard; returns (per-shard batch lists,
        per-parent-batch merge maps of ``(shard, sub_batch, indices)``)."""
        per_shard: list[list[RecordBatch]] = [[] for _ in range(self.n_shards)]
        merge_maps: list[list[tuple[int, RecordBatch, np.ndarray]]] = []
        for batch in batches:
            parts = partition_by_shard(batch, self.shard_map)
            merge_map = []
            for s, (sub, idx) in sorted(parts.items()):
                per_shard[s].append(sub)
                merge_map.append((s, sub, idx))
            merge_maps.append(merge_map)
        return per_shard, merge_maps

    def run(self, batches: Sequence[RecordBatch]) -> ShardReport:
        """Process every record of every batch to completion, round-robin.

        Shard *s* only ever sees records whose key hashes map to *s*;
        mutation batches get their per-shard lookup answers re-keyed back
        onto the parent batches' ``lookup_results`` (parent-local index),
        exactly as an unsharded :meth:`SepoDriver.run` would leave them.
        """
        per_shard, merge_maps = self.partition(batches)
        states = [
            self.drivers[s].begin(per_shard[s]) for s in range(self.n_shards)
        ]
        pending = [
            s for s in range(self.n_shards) if states[s].bitmap.any_pending()
        ]
        # Round-robin pass scheduling: each round gives every still-pending
        # shard one pass + rearrangement on its own clock.  Passes on
        # different shards overlap by construction (independent channels);
        # the makespan is whichever clock ends furthest along.
        while pending:
            still: list[int] = []
            for s in pending:
                state, driver = states[s], self.drivers[s]
                state.iteration += 1
                if state.iteration > driver.max_iterations:
                    raise NoProgressError(
                        f"shard {s} exceeded {driver.max_iterations} "
                        "SEPO iterations"
                    )
                rec = driver.run_pass(per_shard[s], state)
                if rec.succeeded == 0 and rec.attempted > 0:
                    state.stuck_passes += 1
                    if state.stuck_passes >= 2:
                        raise NoProgressError(
                            f"shard {s}: two consecutive SEPO passes made "
                            "no progress; the shard heap cannot host its "
                            "working set"
                        )
                else:
                    state.stuck_passes = 0
                driver.finish_iteration(state, rec)
                if state.bitmap.any_pending():
                    still.append(s)
            pending = still
        reports = [
            self.drivers[s].finalize(per_shard[s], states[s])
            for s in range(self.n_shards)
        ]
        self._merge_lookup_results(batches, merge_maps)
        for batch in batches:
            batch.invalidate_cache()  # partition froze the parent arrays
        n = sum(len(b) for b in batches)
        self.total_records += n
        return ShardReport(
            total_records=n,
            shard_reports=reports,
            schedule=self.schedule.report(),
        )

    @staticmethod
    def _merge_lookup_results(batches, merge_maps) -> None:
        for batch, merge_map in zip(batches, merge_maps):
            if not isinstance(batch, MutationBatch):
                continue
            for _s, sub, idx in merge_map:
                for j, v in sub.lookup_results.items():
                    batch.lookup_results[int(idx[j])] = v

    # ------------------------------------------------------------------
    # readers
    # ------------------------------------------------------------------
    def result(self) -> dict[bytes, Any]:
        """The merged final mapping (shards hold disjoint key sets)."""
        out: dict[bytes, Any] = {}
        for table in self.tables:
            out.update(table.result())
        return out

    def lookup(self, keys: list[bytes]) -> list[Any]:
        """Cross-shard SEPO lookups, answered shard-locally.

        Routes each query to its key's shard and runs that shard's
        :class:`~repro.core.lookup.LookupDriver` (charged to the shard's
        own clock), then scatters the answers back to query order --
        bit-identical to an unsharded lookup of the same keys, because a
        key's entire chain lives in exactly one shard.
        """
        values: list[Any] = [None] * len(keys)
        if not keys:
            return values
        kmat, klens = pack_byte_rows(keys)
        shard_ids = self.shard_map.shard_of_hash(fnv1a_batch(kmat, klens))
        for s in range(self.n_shards):
            idx = np.flatnonzero(shard_ids == s)
            if not len(idx):
                continue
            driver = LookupDriver(
                self.tables[s],
                self.kernels[s],
                self.channels[s].bus,
                impl=self.lookup_impl,
            )
            result = driver.lookup([keys[int(i)] for i in idx])
            for i, v in zip(idx.tolist(), result.values):
                values[i] = v
        return values

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_shards(self):
        """Per-shard structural sanitize + the cross-shard placement check.

        Raises :class:`~repro.sanitize.sanitizer.SanitizerError` on any
        violation; returns the number of distinct keys seen across shards.
        """
        from repro.sanitize.sanitizer import check_shard_placement

        for table in self.tables:
            table.check_invariants()
        return check_shard_placement(self.shard_map, self.tables)
