"""Hash partitioning of the key space across shards.

A shard owns a disjoint slice of the key space, decided by the *high* 32
bits of the tables' 64-bit FNV-1a hash after an avalanche finalizer
(the murmur3 ``fmix64`` steps).  Two deliberate choices:

* **Finalizer first.**  FNV-1a diffuses its low bits well (bucket choice,
  ``h % n_buckets``, is fine) but its high word has poor entropy on
  short, similar keys -- sequential ASCII keys can collapse onto a
  couple of residues mod ``n_shards``.  The xor-shift/multiply finalizer
  avalanches every input bit into every output bit, so shard loads stay
  balanced on exactly the workloads that need sharding.
* **High bits second.**  The shard id reads the high 32 bits of the
  *mixed* word while buckets read the low bits of the *raw* hash, so the
  two decisions are statistically independent: within one shard, keys
  still spread over all of that shard's buckets.  Sharding by
  ``h % n_shards`` directly would interact catastrophically whenever
  ``n_shards`` divides ``n_buckets`` -- every shard's table would then
  use only ``1/n_shards`` of its buckets, multiplying chain depth by the
  shard count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hashing import fnv1a

__all__ = ["ShardMap"]

_MASK64 = (1 << 64) - 1
_FMIX_M1 = 0xFF51AFD7ED558CCD
_FMIX_M2 = 0xC4CEB9FE1A85EC53


def _fmix64(h: np.ndarray) -> np.ndarray:
    """murmur3's 64-bit avalanche finalizer, vectorized (wraps mod 2^64)."""
    s33 = np.uint64(33)
    h = h ^ (h >> s33)
    h = h * np.uint64(_FMIX_M1)
    h = h ^ (h >> s33)
    h = h * np.uint64(_FMIX_M2)
    return h ^ (h >> s33)


def _fmix64_scalar(h: int) -> int:
    h ^= h >> 33
    h = (h * _FMIX_M1) & _MASK64
    h ^= h >> 33
    h = (h * _FMIX_M2) & _MASK64
    return h ^ (h >> 33)


@dataclass(frozen=True)
class ShardMap:
    """Stateless key -> shard assignment over ``n_shards`` shards."""

    n_shards: int

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"need at least one shard, got {self.n_shards}")

    def shard_of_hash(self, hashes: np.ndarray) -> np.ndarray:
        """Vectorized shard ids for an array of 64-bit FNV-1a hashes."""
        h = _fmix64(np.asarray(hashes, dtype=np.uint64))
        return ((h >> np.uint64(32)) % np.uint64(self.n_shards)).astype(
            np.int64
        )

    def shard_of_key(self, key: bytes) -> int:
        """Scalar assignment (sanitizer / router convenience path)."""
        return int((_fmix64_scalar(fnv1a(key)) >> 32) % self.n_shards)
