"""Host-side request router: many client streams, one sharded table.

Clients :meth:`~ShardRouter.submit` small op batches (inserts, updates,
deletes, lookups -- anything a :class:`~repro.core.mutations.
MutationBatch` or plain :class:`~repro.core.records.RecordBatch`
carries) from interleaved streams.  Submitting never answers anything
directly: the router splits each batch by key-space shard and *coalesces*
the per-shard slices until a shard has accumulated a SEPO-sized chunk
(``chunk_records``), then runs that one shard's driver over the queued
slices in arrival order.  Tiny client batches therefore never reach a
device as tiny kernel launches -- the whole point of the router.

Two bounds shape the queueing:

* ``chunk_records`` -- a shard flushes as soon as its queue reaches this
  many records (amortizes launch + transfer overhead per the cost model).
* ``max_pending_records`` -- backpressure: total queued records across
  all shards never exceeds this; an over-budget submit first flushes the
  fullest queues, so host memory stays bounded no matter how skewed the
  traffic.

Answers are merged back *per submission*: every ticket's lookup results
are re-keyed to that batch's own row numbers, and :meth:`~ShardRouter.
drain` returns them in submission order, regardless of which shard
answered what and when.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bigkernel.partitioner import partition_by_shard
from repro.core.records import RecordBatch

__all__ = ["Ticket", "ShardRouter"]


@dataclass
class Ticket:
    """Handle for one submitted batch; resolved at flush/drain time."""

    seq: int
    n_records: int
    #: per-shard slice count still queued (0 = fully executed)
    pending_parts: int = 0
    #: parent-batch-local lookup answers, filled as shards flush
    results: dict[int, Any] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.pending_parts == 0


class ShardRouter:
    """Batching front door for a :class:`~repro.shard.ShardedExecutor`."""

    def __init__(
        self,
        executor,
        *,
        chunk_records: int = 1024,
        max_pending_records: int = 8192,
    ):
        if chunk_records < 1:
            raise ValueError(f"chunk_records must be >= 1: {chunk_records}")
        if max_pending_records < chunk_records:
            raise ValueError(
                "max_pending_records must be >= chunk_records "
                f"({max_pending_records} < {chunk_records})"
            )
        self.executor = executor
        self.chunk_records = chunk_records
        self.max_pending_records = max_pending_records
        #: per-shard FIFO of (ticket, sub_batch, parent_indices)
        self._queues: list[list[tuple]] = [
            [] for _ in range(executor.n_shards)
        ]
        self._queued_records = [0] * executor.n_shards
        self._tickets: list[Ticket] = []
        self.stats = {
            "submitted_batches": 0,
            "submitted_records": 0,
            "chunk_flushes": 0,
            "backpressure_flushes": 0,
            "drain_flushes": 0,
            "flushed_chunks_records": 0,
        }

    # ------------------------------------------------------------------
    @property
    def pending_records(self) -> int:
        return sum(self._queued_records)

    def submit(self, batch: RecordBatch) -> Ticket:
        """Queue one client batch; may trigger shard flushes, never answers.

        Returns a :class:`Ticket` whose ``results`` dict fills in (keyed
        by the batch's own row numbers) as the owning shards flush.
        """
        ticket = Ticket(seq=len(self._tickets), n_records=len(batch))
        self._tickets.append(ticket)
        self.stats["submitted_batches"] += 1
        self.stats["submitted_records"] += len(batch)
        # Backpressure first: make room before queueing, flushing the
        # fullest shards (most records retired per driver run).
        while (
            self.pending_records
            and self.pending_records + len(batch) > self.max_pending_records
        ):
            fullest = max(
                range(len(self._queues)), key=self._queued_records.__getitem__
            )
            self._flush_shard(fullest, cause="backpressure_flushes")
        if len(batch):
            for s, (sub, idx) in sorted(
                partition_by_shard(batch, self.executor.shard_map).items()
            ):
                self._queues[s].append((ticket, sub, idx))
                self._queued_records[s] += len(sub)
                ticket.pending_parts += 1
            batch.invalidate_cache()  # partition froze the parent arrays
        # Coalescing trigger: any shard that now holds a SEPO-sized chunk
        # executes immediately.
        for s in range(len(self._queues)):
            if self._queued_records[s] >= self.chunk_records:
                self._flush_shard(s, cause="chunk_flushes")
        return ticket

    def drain(self) -> list[dict[int, Any]]:
        """Flush every queue; return all tickets' results in submit order."""
        for s in range(len(self._queues)):
            if self._queues[s]:
                self._flush_shard(s, cause="drain_flushes")
        return [t.results for t in self._tickets]

    # ------------------------------------------------------------------
    def _flush_shard(self, s: int, cause: str) -> None:
        queue = self._queues[s]
        if not queue:
            return
        self._queues[s] = []
        n = self._queued_records[s]
        self._queued_records[s] = 0
        self.stats[cause] += 1
        self.stats["flushed_chunks_records"] += n
        subs = [sub for _t, sub, _i in queue]
        # One coalesced SEPO run over every queued slice, arrival order.
        # The shard's table persists across runs, so interleaved streams
        # see one consistent table.
        self.executor.drivers[s].run(subs)
        self.executor.total_records += n
        for ticket, sub, idx in queue:
            for j, v in getattr(sub, "lookup_results", {}).items():
                ticket.results[int(idx[j])] = v
            ticket.pending_parts -= 1
