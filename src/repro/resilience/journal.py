"""The on-disk journal of an in-flight SEPO run.

One journal file is one consistent snapshot, taken at an iteration
boundary with the table quiesced (every page force-evicted).  The format
is a single ``.npz`` archive:

* ``meta`` -- a JSON record holding the journal version, the table's
  configuration (for resume-time validation), every scalar counter
  (driver progress, simulated clock breakdown, PCIe bus and BigKernel
  pipeline counters), the input fingerprint, the degradation-event log,
  and a CRC-32 checksum over all array members;
* ``table_*`` -- the quiesced table snapshot from
  :func:`repro.core.checkpoint.snapshot_table` (bucket heads, segment
  store, pool free-slot order, allocator tallies);
* ``pending`` -- the postponement bitmap's mask;
* ``released``/``log`` -- per-chunk cache-release flags and the
  per-iteration telemetry log.

Writes are atomic: the archive is serialized to memory, written to a
sibling temporary file, fsynced, and :func:`os.replace`\\ d over the
target, so a crash *during* checkpointing leaves either the previous
journal or the new one -- never a torn file.  Reads verify the version
and the checksum and raise :class:`JournalError` on any corruption.
"""

from __future__ import annotations

import io
import json
import os
import zlib

import numpy as np

from repro.core.checkpoint import CheckpointError

__all__ = [
    "JOURNAL_VERSION",
    "JournalError",
    "input_fingerprint",
    "journal_exists",
    "read_journal",
    "table_digest",
    "write_journal",
]

JOURNAL_VERSION = 1


class JournalError(CheckpointError):
    """The journal is missing, corrupt, or inconsistent with the run.

    Subclasses :class:`~repro.core.checkpoint.CheckpointError` so callers
    guarding any checkpoint read (``except CheckpointError``) also catch
    journal damage -- truncated tails, interrupted renames, tampered
    members -- without importing the resilience layer.
    """


def input_fingerprint(batches) -> dict:
    """A cheap identity of the input the journal belongs to.

    Resuming against different input would silently corrupt the run (the
    bitmap indexes records positionally), so the journal stores per-batch
    record counts plus a CRC over the key lengths and rejects mismatches.
    """
    crc = 0
    for b in batches:
        crc = zlib.crc32(np.ascontiguousarray(b.key_lens).tobytes(), crc)
    return {
        "batch_lengths": [len(b) for b in batches],
        "key_lens_crc": crc,
    }


def table_digest(table) -> int:
    """CRC-32 over a table's complete observable byte state.

    Covers the bucket head array plus every segment's bytes (resident or
    evicted), in segment order.  Two runs whose digests match produced
    byte-identical tables -- the resume-equivalence tests compare this.
    """
    heap = table.heap
    crc = zlib.crc32(np.ascontiguousarray(table.buckets.head_cpu).tobytes())
    segments = set(heap._store) | {p.segment for p in heap.resident_pages}
    for seg in sorted(segments):
        crc = zlib.crc32(str(seg).encode(), crc)
        crc = zlib.crc32(
            np.ascontiguousarray(heap.segment_view(seg)).tobytes(), crc
        )
    return crc


def _arrays_checksum(arrays: dict[str, np.ndarray]) -> int:
    crc = 0
    for name in sorted(arrays):
        crc = zlib.crc32(name.encode(), crc)
        crc = zlib.crc32(np.ascontiguousarray(arrays[name]).tobytes(), crc)
    return crc


def journal_exists(path) -> bool:
    return path is not None and os.path.exists(path)


def write_journal(path, meta: dict, arrays: dict[str, np.ndarray]) -> None:
    """Atomically persist one snapshot to ``path``.

    ``meta`` must be JSON-serializable; ``arrays`` maps member names to
    numpy arrays.  The checksum and version are added here.
    """
    meta = dict(meta)
    meta["journal_version"] = JOURNAL_VERSION
    meta["checksum"] = _arrays_checksum(arrays)
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        **arrays,
    )
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as f:
        f.write(buffer.getvalue())
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def read_journal(path) -> tuple[dict, dict[str, np.ndarray]]:
    """Load and verify a journal; returns ``(meta, arrays)``.

    Every corruption mode -- truncated archive, tampered member bytes,
    bad JSON, wrong version, checksum mismatch -- raises
    :class:`JournalError` with a message naming the problem.
    """
    if not os.path.exists(path):
        raise JournalError(f"no journal at {path!r}")
    try:
        archive = np.load(path)
    except Exception as exc:
        raise JournalError(f"unreadable journal {path!r}: {exc}") from exc
    arrays: dict[str, np.ndarray] = {}
    with archive:
        try:
            meta = json.loads(bytes(archive["meta"]).decode())
            for name in archive.files:
                if name != "meta":
                    arrays[name] = archive[name]
        except KeyError as exc:
            raise JournalError(
                f"journal {path!r} is missing member {exc}"
            ) from None
        except Exception as exc:  # tampered member bytes / bad JSON
            raise JournalError(f"corrupt journal {path!r}: {exc}") from exc
    if not isinstance(meta, dict):
        raise JournalError(f"corrupt journal metadata in {path!r}")
    version = meta.get("journal_version")
    if version != JOURNAL_VERSION:
        raise JournalError(f"unsupported journal version {version!r}")
    if meta.get("checksum") != _arrays_checksum(arrays):
        raise JournalError(
            f"journal {path!r} failed its checksum (torn or tampered write)"
        )
    return meta, arrays
