"""Resilient execution layer: checkpoint/resume, retry, degradation.

Long-running SEPO jobs die three ways -- process death (SIGKILL, OOM
killer, preemption), transient interconnect faults, and persistent memory
pressure the stock driver answers with
:class:`~repro.core.sepo.NoProgressError`.  This package survives all
three:

* :mod:`repro.resilience.journal` -- an atomic, checksummed on-disk
  journal of an in-flight run (quiesced table, postponement bitmap,
  simulated clock, bus/pipeline counters).
* :mod:`repro.resilience.driver` -- :class:`ResilientDriver`, a wrapper
  over :class:`~repro.core.sepo.SepoDriver` that journals at iteration
  boundaries, resumes from a journal byte-identically, and degrades
  gracefully (forced eviction -> chunk shrinking -> CPU-table fallback)
  instead of crashing.
* :mod:`repro.resilience.crashtest` -- the SIGKILL-and-resume harness CI
  runs (``python -m repro.resilience.crashtest``).

See ``docs/robustness.md`` for the journal format and the degradation
ladder's semantics.
"""

from repro.resilience.driver import (
    DegradationEvent,
    DegradedTable,
    ResilientDriver,
    ResilientReport,
)
from repro.resilience.journal import (
    JournalError,
    input_fingerprint,
    journal_exists,
    read_journal,
    table_digest,
    write_journal,
)

__all__ = [
    "DegradationEvent",
    "DegradedTable",
    "ResilientDriver",
    "ResilientReport",
    "JournalError",
    "input_fingerprint",
    "journal_exists",
    "read_journal",
    "table_digest",
    "write_journal",
]
