"""Resilient SEPO execution: checkpoint/resume + graceful degradation.

:class:`ResilientDriver` wraps a :class:`~repro.core.sepo.SepoDriver` and
re-runs its iteration loop with three additions:

* **Journaled checkpoints.**  Every ``checkpoint_every`` iterations the
  table is quiesced (force-evicted -- after which the whole table is
  CPU-addressable and pool slot order is the only GPU-side state) and an
  atomic journal is written.  A SIGKILL'd run restarted with
  ``resume=True`` replays from the last journal and produces a final
  table *byte-identical* to an uninterrupted run of the same
  configuration: checkpoint quiesces perturb page layout, so the
  uninterrupted oracle is the same ``ResilientDriver`` schedule, not the
  bare ``SepoDriver``.

* **Degradation ladder.**  Where the stock driver raises
  :class:`~repro.core.sepo.NoProgressError` after two unproductive
  passes, this driver escalates: (1) *forced eviction* -- quiesce the
  heap, flushing even pinned multi-valued key pages; (2) *chunk
  shrinking* -- cap the pending records attempted per batch, halving
  down to one, to bound the allocation burst a starved heap must absorb;
  (3) *CPU-table fallback* -- consume every still-pending record into a
  host-side dict (charged as HOST time) and merge it into the result.
  Each escalation emits a structured :class:`DegradationEvent`; progress
  de-escalates (the cap grows back and the episode resets).

* **Transient-fault visibility.**  PCIe retries happen inside
  :class:`~repro.gpusim.pcie.PCIeBus`; this driver surfaces their count
  and simulated cost in the :class:`ResilientReport`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.checkpoint import (
    quiesce_table,
    restore_clock,
    restore_table,
    snapshot_clock,
    snapshot_table,
)
from repro.core.organizations import (
    CombiningOrganization,
    HASH_CYCLES_PER_BYTE,
    INSERT_CYCLES,
)
from repro.core.records import RecordBatch
from repro.core.sepo import (
    IterationRecord,
    NoProgressError,
    RunState,
    SepoDriver,
    SepoReport,
)
from repro.gpusim.clock import CostCategory
from repro.integrity import CorruptionError
from repro.resilience.journal import (
    JournalError,
    input_fingerprint,
    journal_exists,
    read_journal,
    write_journal,
)

__all__ = [
    "DegradationEvent",
    "DegradedTable",
    "ResilientDriver",
    "ResilientReport",
]

#: ladder rungs, in escalation order
FORCED_EVICTION = "forced-eviction"
CHUNK_SHRINK = "chunk-shrink"
CPU_FALLBACK = "cpu-fallback"
#: not a rung: unrepairable integrity damage recorded on the way out
DATA_CORRUPTION = "data-corruption"


@dataclass
class DegradationEvent:
    """One structured record of the policy engine stepping in."""

    action: str  # FORCED_EVICTION | CHUNK_SHRINK | CPU_FALLBACK
    iteration: int
    pending_before: int
    detail: str = ""


@dataclass
class ResilientReport:
    """A finished resilient run: SEPO telemetry + recovery telemetry."""

    sepo: SepoReport
    table: Any  # GpuHashTable | DegradedTable
    checkpoints_written: int = 0
    resumed_from_iteration: int | None = None
    degradation_events: list[DegradationEvent] = field(default_factory=list)
    #: failed PCIe attempts absorbed by backoff-and-retry
    retries: int = 0
    #: simulated seconds those failures + backoff cost (RETRY category)
    retry_seconds: float = 0.0

    @property
    def elapsed_seconds(self) -> float:
        return self.sepo.elapsed_seconds

    @property
    def iterations(self) -> int:
        return self.sepo.iterations

    @property
    def breakdown(self) -> dict[str, float]:
        return self.sepo.breakdown

    @property
    def degraded(self) -> bool:
        return bool(self.degradation_events)


class DegradedTable:
    """A GPU table plus the host-side overflow a CPU fallback absorbed.

    Presents the same read interface as the underlying table (attribute
    access delegates), with :meth:`result` merging the overflow per the
    organization's semantics.  The wrapped table stays reachable as
    ``.table`` for introspection.
    """

    def __init__(self, table, overflow: dict[bytes, Any]):
        self.table = table
        self.overflow = overflow

    def __getattr__(self, name):
        return getattr(self.table, name)

    def result(self) -> dict[bytes, Any]:
        out = self.table.result()
        if isinstance(self.table.org, CombiningOrganization):
            comb = self.table.org.combiner
            for key, value in self.overflow.items():
                out[key] = (
                    comb.combine(out[key], value) if key in out else value
                )
        else:
            for key, values in self.overflow.items():
                out.setdefault(key, []).extend(values)
        return out


class ResilientDriver:
    """Crash-recoverable, failure-tolerant wrapper over ``SepoDriver``."""

    def __init__(
        self,
        driver: SepoDriver,
        journal_path=None,
        checkpoint_every: int = 1,
        degrade: bool = True,
    ):
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0 (0 disables)")
        self.driver = driver
        self.journal_path = journal_path
        self.checkpoint_every = checkpoint_every
        self.degrade = degrade
        self.events: list[DegradationEvent] = []
        self.checkpoints_written = 0
        self.resumed_from: int | None = None
        #: current chunk-shrink cap (None = unlimited)
        self._limit: int | None = None
        #: forced eviction already tried in the current stuck episode
        self._episode_evicted = False
        self._overflow: dict[bytes, Any] = {}

    # ------------------------------------------------------------------
    def run(
        self, batches: Sequence[RecordBatch], resume: bool = False
    ) -> ResilientReport:
        """Run to completion; ``resume=True`` replays an existing journal.

        ``resume`` with no journal on disk starts fresh (so a crash-loop
        supervisor can always pass ``--resume``); whether a journal was
        actually used is reported as ``resumed_from_iteration``.
        """
        d = self.driver
        if resume and journal_exists(self.journal_path):
            state = self._restore(batches)
        else:
            state = d.begin(batches)
        try:
            while state.bitmap.any_pending():
                state.iteration += 1
                if state.iteration > d.max_iterations:
                    if not self.degrade:
                        raise NoProgressError(
                            f"exceeded {d.max_iterations} SEPO iterations"
                        )
                    self._fallback(
                        batches, state,
                        f"exceeded {d.max_iterations} SEPO iterations",
                    )
                    break
                rec = d.run_pass(batches, state, limit=self._limit)
                if rec.succeeded == 0 and rec.attempted > 0:
                    state.stuck_passes += 1
                else:
                    state.stuck_passes = 0
                    self._deescalate(batches)
                if state.stuck_passes >= 2:
                    # the point where the stock driver gives up (see
                    # SepoDriver.run); the ladder takes over instead
                    if not self.degrade:
                        raise NoProgressError(
                            "two consecutive SEPO passes made no progress; "
                            "the heap cannot host the working set"
                        )
                    self._escalate(batches, state)
                d.finish_iteration(state, rec)
                if self._should_checkpoint(state):
                    self.checkpoint(batches, state)
        except CorruptionError as exc:
            # unrepairable damage: record a structured event so operators
            # see the ladder bottoming out, then refuse to answer --
            # propagating beats returning a table with garbage bytes
            self._event(DATA_CORRUPTION, state, exc.event.describe())
            raise
        report = d.finalize(batches, state)
        bus = d.bus
        table = d.table
        if self._overflow:
            table = DegradedTable(table, self._overflow)
        return ResilientReport(
            sepo=report,
            table=table,
            checkpoints_written=self.checkpoints_written,
            resumed_from_iteration=self.resumed_from,
            degradation_events=list(self.events),
            retries=bus.retries,
            retry_seconds=bus.retry_seconds,
        )

    # ------------------------------------------------------------------
    # degradation ladder
    # ------------------------------------------------------------------
    def _escalate(self, batches, state: RunState) -> None:
        d = self.driver
        pending = state.bitmap.pending_count
        if not self._episode_evicted:
            # Rung 1: flush everything, pinned pages included.  The stock
            # end_iteration already evicts per policy; what it never does
            # (outside multi-valued deadlock avoidance) is evict *pinned*
            # key pages or reset a poisoned allocator episode wholesale.
            moved = quiesce_table(d.table, d.bus)
            self._episode_evicted = True
            self._event(
                FORCED_EVICTION, state, f"flushed {moved} bytes to host"
            )
            state.stuck_passes = 1
            return
        if self._limit is None or self._limit > 1:
            # Rung 2: bound the per-batch allocation burst.
            if self._limit is None:
                self._limit = max(1, max(len(b) for b in batches) // 2)
            else:
                self._limit //= 2
            self._event(CHUNK_SHRINK, state, f"cap {self._limit}/batch")
            state.stuck_passes = 1
            return
        # Rung 3: the heap cannot host even one record per pass.
        self._fallback(
            batches, state,
            "no progress at cap 1/batch after forced eviction",
        )

    def _deescalate(self, batches) -> None:
        """Progress resets the episode and relaxes any shrink cap."""
        self._episode_evicted = False
        if self._limit is not None:
            self._limit *= 4
            if self._limit >= max(len(b) for b in batches):
                self._limit = None

    def _fallback(self, batches, state: RunState, reason: str) -> None:
        """Consume every pending record into a host-side dict (HOST time).

        The GPU table keeps everything it already holds; the overflow
        dict is merged at result time by :class:`DegradedTable`.  Not
        checkpointed: a kill between fallback and completion resumes from
        the pre-fallback journal and deterministically redoes it.
        """
        d = self.driver
        table = d.table
        combining = isinstance(table.org, CombiningOrganization)
        comb = table.org.combiner if combining else None
        pending_total = state.bitmap.pending_count
        cycles = 0.0
        for batch, start in zip(batches, state.starts):
            pending = state.bitmap.pending_in(int(start), int(start) + len(batch))
            if pending.size == 0:
                continue
            if not batch.pure_insert:
                # A host overflow merges *additively* into the result;
                # pending deletes/updates cannot be expressed that way
                # (they would have to mutate the GPU table's own entries),
                # so this rung is unsound for mixed-op batches.
                raise NoProgressError(
                    "CPU fallback cannot absorb a mutation batch "
                    f"(deletes/updates pending): {reason}"
                )
            keys = batch.key_bytes_list()
            for i in (pending - int(start)).tolist():
                key = keys[i]
                cycles += HASH_CYCLES_PER_BYTE * len(key) + INSERT_CYCLES
                if combining:
                    v = batch.numeric_values[i].item()
                    self._overflow[key] = (
                        comb.combine(self._overflow[key], v)
                        if key in self._overflow
                        else v
                    )
                else:
                    self._overflow.setdefault(key, []).append(
                        batch.value_bytes(i)
                    )
            state.bitmap.mark_done(pending)
        table.ledger.charge(
            CostCategory.HOST, cycles / table.maintenance_throughput
        )
        self._event(
            CPU_FALLBACK, state,
            f"{pending_total} records to host table: {reason}",
            pending=pending_total,
        )

    def _event(
        self, action: str, state: RunState, detail: str,
        pending: int | None = None,
    ) -> None:
        self.events.append(
            DegradationEvent(
                action=action,
                iteration=state.iteration,
                pending_before=(
                    state.bitmap.pending_count if pending is None else pending
                ),
                detail=detail,
            )
        )

    # ------------------------------------------------------------------
    # journaling
    # ------------------------------------------------------------------
    def _should_checkpoint(self, state: RunState) -> bool:
        return (
            self.journal_path is not None
            and self.checkpoint_every > 0
            and state.iteration % self.checkpoint_every == 0
            and state.bitmap.any_pending()
        )

    def checkpoint(self, batches, state: RunState) -> None:
        """Quiesce and journal the run at an iteration boundary."""
        d = self.driver
        quiesce_table(d.table, d.bus)
        payload = snapshot_table(d.table)
        arrays = {
            f"table_{k}": v for k, v in payload.items() if k != "meta"
        }
        arrays["pending"] = state.bitmap.snapshot()
        arrays["released"] = np.asarray(state.released, dtype=bool)
        arrays["log"] = np.array(
            [
                [r.index, r.attempted, r.succeeded, r.postponed,
                 int(r.halted_early), r.evicted_bytes, r.pages_retained]
                for r in state.log
            ],
            dtype=np.int64,
        ).reshape(len(state.log), 7)
        bus = d.bus
        meta = {
            "table": payload["meta"],
            "driver": {
                "iteration": state.iteration,
                "stuck_passes": state.stuck_passes,
                "streamed": state.streamed,
                "limit": self._limit,
                "episode_evicted": self._episode_evicted,
            },
            "clock": snapshot_clock(d.table.ledger),
            "bus": {
                "bytes_moved": bus.bytes_moved,
                "transactions": bus.transactions,
                "transfer_ops": bus.transfer_ops,
                "retries": bus.retries,
                "retry_seconds": bus.retry_seconds,
            },
            "pipeline": {
                "chunks_streamed": d.pipeline.chunks_streamed,
                "exposed_seconds": d.pipeline.exposed_seconds,
            },
            "fingerprint": input_fingerprint(batches),
            "events": [asdict(e) for e in self.events],
        }
        integrity = d.table.heap.integrity
        if integrity is not None:
            # captured after the quiesce so the eviction's seal charges are
            # journaled as pending and drained on the same boundary a
            # resumed run would drain them
            meta["integrity"] = integrity.snapshot_meta()
        write_journal(self.journal_path, meta, arrays)
        self.checkpoints_written += 1
        if integrity is not None:
            integrity.repair_source = self._journal_repair_source

    def _journal_repair_source(self, segment: int):
        """Re-derive one segment's bytes from the last journal, or None.

        The integrity layer CRC-gates whatever this returns, so handing
        back a stale generation (segment re-evicted since the checkpoint)
        is safe -- it simply fails the gate and the page is quarantined.
        """
        try:
            _, arrays = read_journal(self.journal_path)
        except (JournalError, OSError):
            return None
        ids = arrays.get("table_segment_ids")
        data = arrays.get("table_segment_data")
        if ids is None or data is None:
            return None
        rows = np.flatnonzero(np.asarray(ids) == segment)
        if rows.size == 0:
            return None
        return bytes(np.ascontiguousarray(data[int(rows[0])]))

    def _restore(self, batches) -> RunState:
        d = self.driver
        meta, arrays = read_journal(self.journal_path)
        if meta["fingerprint"] != input_fingerprint(batches):
            raise JournalError(
                "journal was written for different input (fingerprint "
                "mismatch); refusing to resume"
            )
        table_payload = {"meta": meta["table"]}
        for k, v in arrays.items():
            if k.startswith("table_"):
                table_payload[k[len("table_"):]] = v
        restore_table(d.table, table_payload)
        restore_clock(d.table.ledger, meta["clock"])
        bus, pipe = d.bus, d.pipeline
        bus.bytes_moved = int(meta["bus"]["bytes_moved"])
        bus.transactions = int(meta["bus"]["transactions"])
        bus.transfer_ops = int(meta["bus"]["transfer_ops"])
        bus.retries = int(meta["bus"]["retries"])
        bus.retry_seconds = float(meta["bus"]["retry_seconds"])
        pipe.chunks_streamed = int(meta["pipeline"]["chunks_streamed"])
        pipe.exposed_seconds = float(meta["pipeline"]["exposed_seconds"])

        state = d.begin(batches)
        if state.total != len(arrays["pending"]):
            raise JournalError(
                f"journal bitmap covers {len(arrays['pending'])} records, "
                f"input has {state.total}"
            )
        state.bitmap.restore(arrays["pending"])
        state.released = [bool(x) for x in arrays["released"]]
        drv = meta["driver"]
        state.iteration = int(drv["iteration"])
        state.stuck_passes = int(drv["stuck_passes"])
        state.streamed = int(drv["streamed"])
        state.log = [
            IterationRecord(
                index=int(row[0]), attempted=int(row[1]),
                succeeded=int(row[2]), postponed=int(row[3]),
                halted_early=bool(row[4]), evicted_bytes=int(row[5]),
                pages_retained=int(row[6]),
            )
            for row in arrays["log"]
        ]
        self._limit = drv["limit"] if drv["limit"] is None else int(drv["limit"])
        self._episode_evicted = bool(drv["episode_evicted"])
        self.events = [DegradationEvent(**e) for e in meta["events"]]
        self.resumed_from = state.iteration
        integrity = d.table.heap.integrity
        if integrity is not None and "integrity" in meta:
            # restore_table already resealed the segment store; this puts
            # back the epoch/cursor/pending charges the journal captured
            integrity.restore_meta(meta["integrity"])
            integrity.repair_source = self._journal_repair_source
        d.table.sanitize_check("iteration")
        return state
