"""SIGKILL-and-resume conformance harness (``python -m repro.resilience.crashtest``).

The parent process runs seeded fault schedules against the WordCount
application, plus one ``mutation`` schedule that SIGKILLs inside a
delete-heavy :class:`~repro.core.mutations.MutationBatch` pass (the
journal must carry tombstone/mutation counters for the resumed run to
stay byte-identical).  For each schedule it:

1. computes an *uninterrupted oracle* in-process -- a
   :class:`~repro.resilience.ResilientDriver` run with the schedule's
   ``checkpoint_every`` (checkpointing quiesces the table, so the oracle
   must checkpoint on the same cadence as the victim);
2. spawns a child that runs the same job journaled, and ``SIGKILL``\\ s
   itself mid-iteration -- a configurable number of ``insert_batch``
   calls after the Nth checkpoint lands, so the journal is guaranteed to
   exist and the death is guaranteed to be mid-pass;
3. spawns a second child that resumes from the journal and prints its
   final table digest, result checksum, and simulated clock;
4. asserts the resumed run is byte-identical to the oracle (table
   digest), value-identical to the pure-Python dict oracle
   (``app.reference``), and clock-identical to the uninterrupted run.

Children run under ``REPRO_SANITIZE=paranoid`` so every structural
invariant is re-checked after restore.  A final in-process phase injects
a :class:`~repro.sanitize.TransientTransferFault` schedule and asserts
the run completes with the retry time visible in the simulated-clock
breakdown.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import zlib

from repro.apps.wordcount import WordCount
from repro.core.session import GpuSession
from repro.gpusim.device import GTX_780TI
from repro.resilience.driver import ResilientDriver
from repro.resilience.journal import table_digest

__all__ = ["SCHEDULES", "main"]

#: (checkpoint cadence, kill after Nth checkpoint, + this many batch
#: calls).  ``mutation`` schedules stream delete-heavy MutationBatches,
#: so the SIGKILL lands between delete/update passes, mid-mutation-run.
#: The ``integrity`` schedule runs with checksums + background scrubbing
#: on and dies *inside* the scrub sweep -- after CRC work mutated the
#: scrub cursor but before the charge was drained or checkpointed -- so
#: resume must replay the torn maintenance from journaled integrity meta.
SCHEDULES = [
    {"checkpoint_every": 1, "after_checkpoint": 1, "inserts": 3},
    {"checkpoint_every": 1, "after_checkpoint": 2, "inserts": 5},
    {"checkpoint_every": 2, "after_checkpoint": 1, "inserts": 7},
    {"checkpoint_every": 1, "after_checkpoint": 1, "inserts": 2,
     "mutation": True},
    {"checkpoint_every": 1, "after_checkpoint": 1, "inserts": 0,
     "integrity": "scrub", "scrub_budget": 2, "mid_scrub": True},
]


def _result_crc(result: dict) -> int:
    """Order-independent checksum of a table's result dictionary."""
    crc = 0
    for key in sorted(result):
        value = result[key]
        if isinstance(value, list):
            value = sorted(value)
        crc = zlib.crc32(key, crc)
        crc = zlib.crc32(repr(value).encode(), crc)
    return crc


def _build_mutation(args):
    """Delete-heavy MutationBatch stream over a basic-organization table.

    Returns the same 5-tuple shape as :func:`_build`, with the dict-model
    reference (already normalized to sorted value lists) in the ``data``
    slot -- the oracle phase consumes it directly instead of calling an
    application's ``reference``.
    """
    from repro.core.organizations import BasicOrganization
    from repro.sanitize.workloads import (
        make_mutation_batches,
        make_op_workload,
        mutation_oracle,
    )

    n_ops = max(600, args.size // 40)
    workload = make_op_workload(
        "delete-heavy-uniform", n_ops, seed=args.seed
    )
    batches = make_mutation_batches(
        workload, "basic", batch_size=max(50, n_ops // 12)
    )
    session = GpuSession(GTX_780TI, args.scale, 1 << 20)
    table, driver = session.build_table(
        n_buckets=args.buckets,
        organization=BasicOrganization(),
        page_size=4096,
        n_records=sum(len(b) for b in batches),
        integrity=getattr(args, "integrity", None) or "off",
        scrub_budget=getattr(args, "scrub_budget", 4),
    )
    reference = mutation_oracle(workload, "basic")[0]
    return None, reference, batches, table, driver


def _build(args):
    """WordCount wired exactly like ``Application.run_gpu`` would."""
    if getattr(args, "mutation", False):
        return _build_mutation(args)
    app = WordCount()
    data = app.generate_input(args.size, seed=args.seed)
    chunk = GpuSession.clamp_chunk(GTX_780TI, args.scale, app.chunk_bytes)
    batches = app.batches(data, chunk)
    session = GpuSession(GTX_780TI, args.scale, chunk)
    table, driver = session.build_table(
        n_buckets=args.buckets,
        organization=app.make_organization(),
        page_size=4096,
        n_records=sum(len(b) for b in batches),
        integrity=getattr(args, "integrity", None) or "off",
        scrub_budget=getattr(args, "scrub_budget", 4),
    )
    return app, data, batches, table, driver


def _child(args) -> int:
    _, _, batches, table, driver = _build(args)
    resilient = ResilientDriver(
        driver,
        journal_path=args.journal,
        checkpoint_every=args.checkpoint_every,
    )
    if args.kill_after_checkpoint is not None:
        seen = {"checkpoints": 0, "inserts": 0}
        checkpoint = resilient.checkpoint

        def counting_checkpoint(batches_, state):
            checkpoint(batches_, state)
            seen["checkpoints"] += 1

        def killing(original):
            def wrapped(*a, **kw):
                if seen["checkpoints"] >= args.kill_after_checkpoint:
                    seen["inserts"] += 1
                    if seen["inserts"] > args.kill_inserts:
                        # Die the hard way: no atexit, no cleanup, no flush.
                        os.kill(os.getpid(), signal.SIGKILL)
                return original(*a, **kw)

            return wrapped

        resilient.checkpoint = counting_checkpoint
        if args.kill_mid_scrub:
            # die inside the scrub sweep: the CRC pass has advanced the
            # cursor and accrued uncharged pending bytes, none of which
            # survives -- resume must rebuild them from journaled meta
            integ = table.heap.integrity
            scrub = integ.scrub

            def scrub_and_die(heap):
                swept = scrub(heap)
                if seen["checkpoints"] >= args.kill_after_checkpoint:
                    os.kill(os.getpid(), signal.SIGKILL)
                return swept

            integ.scrub = scrub_and_die
        else:
            # mutation batches route through mutate_batch; wrap both entry
            # points so the kill lands mid-pass either way
            table.insert_batch = killing(table.insert_batch)
            table.mutate_batch = killing(table.mutate_batch)

    report = resilient.run(batches, resume=args.resume)
    print(json.dumps({
        "digest": table_digest(driver.table),
        "result_crc": _result_crc(report.table.result()),
        "elapsed": report.elapsed_seconds,
        "iterations": report.iterations,
        "resumed_from": report.resumed_from_iteration,
        "checkpoints": report.checkpoints_written,
    }))
    return 0


def _spawn(args, journal, schedule, resume: bool):
    cmd = [
        sys.executable, "-m", "repro.resilience.crashtest", "--child",
        "--journal", journal,
        "--checkpoint-every", str(schedule["checkpoint_every"]),
        "--size", str(args.size), "--seed", str(args.seed),
        "--scale", str(args.scale), "--buckets", str(args.buckets),
    ]
    if schedule.get("mutation"):
        cmd.append("--mutation")
    if schedule.get("integrity"):
        cmd += [
            "--integrity", schedule["integrity"],
            "--scrub-budget", str(schedule.get("scrub_budget", 4)),
        ]
    if resume:
        cmd.append("--resume")
    else:
        cmd += [
            "--kill-after-checkpoint", str(schedule["after_checkpoint"]),
            "--kill-inserts", str(schedule["inserts"]),
        ]
        if schedule.get("mid_scrub"):
            cmd.append("--kill-mid-scrub")
    env = dict(os.environ, REPRO_SANITIZE="paranoid")
    return subprocess.run(cmd, capture_output=True, text=True, env=env)


def _oracle(args, cadence: int, workdir: str):
    """Uninterrupted resilient run with the given checkpoint cadence."""
    app, data, batches, table, driver = _build(args)
    mutation = getattr(args, "mutation", False)
    suffix = "-mut" if mutation else ""
    if getattr(args, "integrity", None):
        suffix += f"-{args.integrity}"
    resilient = ResilientDriver(
        driver,
        journal_path=os.path.join(workdir, f"oracle-{cadence}{suffix}.npz"),
        checkpoint_every=cadence,
    )
    report = resilient.run(batches)
    if mutation:
        # data is the dict-model reference (sorted value lists); the
        # table's chains are newest-first, so normalize before comparing
        reference = data
        actual = {k: sorted(v) for k, v in report.table.result().items()}
    else:
        reference = app.reference(data)
        actual = report.table.result()
    assert actual == reference, (
        "oracle run disagrees with the pure-Python reference"
    )
    return {
        "digest": table_digest(table),
        "result_crc": _result_crc(reference),
        "elapsed": report.elapsed_seconds,
        "iterations": report.iterations,
    }


def _retry_phase(args) -> None:
    from repro.sanitize import TransientTransferFault

    _, _, batches, table, driver = _build(args)
    fault = TransientTransferFault(every=5, failures=2)
    fault.install(table, driver)
    report = driver.run(batches)
    retry = report.breakdown.get("retry", 0.0)
    assert driver.bus.retries > 0, "fault schedule never fired"
    assert retry > 0.0, "retry time missing from the clock breakdown"
    print(f"retry phase: {driver.bus.retries} retries, "
          f"{retry * 1e6:.2f}us charged to the simulated clock")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.resilience.crashtest")
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--journal", help=argparse.SUPPRESS)
    parser.add_argument("--checkpoint-every", type=int, default=1,
                        help=argparse.SUPPRESS)
    parser.add_argument("--resume", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--kill-after-checkpoint", type=int, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--kill-inserts", type=int, default=0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--mutation", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--integrity", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--scrub-budget", type=int, default=4,
                        help=argparse.SUPPRESS)
    parser.add_argument("--kill-mid-scrub", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--size", type=int, default=200_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=int, default=65_536)
    parser.add_argument("--buckets", type=int, default=512)
    args = parser.parse_args(argv)

    if args.child:
        os.environ.setdefault("REPRO_SANITIZE", "paranoid")
        return _child(args)

    os.environ.setdefault("REPRO_SANITIZE", "paranoid")
    oracles: dict[tuple[int, bool], dict] = {}
    failures = 0
    with tempfile.TemporaryDirectory(prefix="crashtest-") as workdir:
        for i, schedule in enumerate(SCHEDULES, 1):
            cadence = schedule["checkpoint_every"]
            args.mutation = bool(schedule.get("mutation"))
            args.integrity = schedule.get("integrity")
            args.scrub_budget = schedule.get("scrub_budget", 4)
            key = (cadence, args.mutation, args.integrity)
            if key not in oracles:
                oracles[key] = _oracle(args, cadence, workdir)
            oracle = oracles[key]
            journal = os.path.join(workdir, f"schedule-{i}.npz")

            victim = _spawn(args, journal, schedule, resume=False)
            if victim.returncode != -signal.SIGKILL:
                print(f"schedule {i}: victim exited {victim.returncode}, "
                      f"expected SIGKILL\n{victim.stderr}")
                failures += 1
                continue
            if not os.path.exists(journal):
                print(f"schedule {i}: victim died without writing a journal")
                failures += 1
                continue

            survivor = _spawn(args, journal, schedule, resume=True)
            if survivor.returncode != 0:
                print(f"schedule {i}: resume failed\n{survivor.stderr}")
                failures += 1
                continue
            out = json.loads(survivor.stdout)

            problems = []
            if out["digest"] != oracle["digest"]:
                problems.append(
                    f"table digest {out['digest']} != oracle {oracle['digest']}"
                )
            if out["result_crc"] != oracle["result_crc"]:
                problems.append("result differs from the dict oracle")
            if abs(out["elapsed"] - oracle["elapsed"]) > 1e-12:
                problems.append(
                    f"clock {out['elapsed']} != oracle {oracle['elapsed']}"
                )
            if out["resumed_from"] is None:
                problems.append("survivor did not resume from the journal")
            if problems:
                failures += 1
                print(f"schedule {i}: FAIL ({'; '.join(problems)})")
            else:
                print(f"schedule {i}: OK -- killed after checkpoint "
                      f"{schedule['after_checkpoint']}+{schedule['inserts']} "
                      f"inserts, resumed at iteration {out['resumed_from']}, "
                      f"byte-identical through iteration {out['iterations']}")

    args.mutation = False
    args.integrity = None
    _retry_phase(args)
    if failures:
        print(f"{failures} schedule(s) failed")
        return 1
    print("all schedules byte-identical after SIGKILL + resume")
    return 0


if __name__ == "__main__":
    sys.exit(main())
